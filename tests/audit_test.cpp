// Tests for the invariant-audit subsystem (src/analysis/audit.hpp): a
// feasible pipeline run passes all four auditors, and each targeted
// mutation — over-capacity UAV, disconnected relay, duplicate assignment,
// quota-violating seed plan, non-maximum flow — produces the matching
// structured violation.
#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "common/rng.hpp"
#include "core/appro_alg.hpp"
#include "graph/bfs.hpp"

namespace uavcov {
namespace {

using analysis::AuditError;
using analysis::AuditReport;
using analysis::ViolationCode;

/// Random small scenario mirroring appro_alg_test's generator.
Scenario random_scenario(Rng& rng, std::int32_t cells, std::int32_t users,
                         std::int32_t uavs, std::int32_t cap_max = 3) {
  Scenario sc{
      .grid = Grid(cells * 100.0, cells * 100.0, 100.0),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t i = 0; i < users; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, cells * 100.0), rng.uniform(0, cells * 100.0)},
         1e3});
  }
  for (std::int32_t k = 0; k < uavs; ++k) {
    sc.fleet.push_back(
        {1 + static_cast<std::int32_t>(rng.next_below(
             static_cast<std::uint64_t>(cap_max))),
         Radio{}, 120.0});
  }
  return sc;
}

// ---------------------------------------------------------------------------
// Green path: a feasible end-to-end run satisfies all four auditors.

TEST(Audit, FeasiblePipelinePassesAllFourAuditors) {
  Rng rng(2024);
  const Scenario sc = random_scenario(rng, 5, 25, 5);
  const CoverageModel cov(sc);

  // In-solver auditors (flow + matroids on every greedy round, plan once,
  // solution at the end) must stay silent on a healthy run.
  ApproAlgParams params;
  params.s = 2;
  params.audit = true;
  Solution sol;
  ASSERT_NO_THROW(sol = appro_alg(sc, cov, params));

  // And the standalone auditors agree, reporting nonzero work done.
  const AuditReport plan_report =
      analysis::audit_segment_plan(compute_segment_plan(sc.uav_count(), 2));
  EXPECT_TRUE(plan_report.ok()) << plan_report.to_string();
  EXPECT_GT(plan_report.checks, 0);

  const AuditReport sol_report = analysis::audit_solution(sc, cov, sol);
  EXPECT_TRUE(sol_report.ok()) << sol_report.to_string();
  EXPECT_GT(sol_report.checks, 0);

  IncrementalAssignment ia(sc, cov);
  for (const Deployment& d : sol.deployments) ia.deploy(d.uav, d.loc);
  const AuditReport flow_report = analysis::audit_assignment_flow(ia);
  EXPECT_TRUE(flow_report.ok()) << flow_report.to_string();

  const Graph g = build_location_graph(sc.grid, sc.uav_range_m);
  const SegmentPlan plan = compute_segment_plan(sc.uav_count(), 2);
  std::vector<LocationId> seeds;
  std::vector<LocationId> chosen;
  for (const Deployment& d : sol.deployments) chosen.push_back(d.loc);
  if (!chosen.empty()) seeds.push_back(chosen.front());
  std::vector<NodeId> seed_nodes;
  for (const LocationId v : seeds) seed_nodes.push_back(to_node(v));
  HopBudgetMatroid m2(bfs_distances(g, seed_nodes), plan.quotas);
  // The deployed set may legitimately exceed M2 (relays are added outside
  // the matroid), so audit only the M1 side plus sampled axioms on an
  // independent set: the seed itself.
  const AuditReport m_report = analysis::audit_matroids(
      m2, seeds, sol.deployments, sc.uav_count());
  EXPECT_TRUE(m_report.ok()) << m_report.to_string();
}

// ---------------------------------------------------------------------------
// audit_solution mutations.

/// Feasible two-UAV hand-built instance: two adjacent cells, users on each.
Scenario two_cell_scenario() {
  Scenario sc{
      .grid = Grid(200, 100, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{2, Radio{}, 120.0}, {2, Radio{}, 120.0}},
  };
  sc.users = {{{50, 50}, 1e3}, {{60, 50}, 1e3}, {{150, 50}, 1e3}};
  return sc;
}

Solution feasible_two_cell_solution() {
  Solution sol;
  sol.algorithm = "handmade";
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{1}}};
  sol.user_to_deployment = {0, 0, 1};
  sol.served = 3;
  return sol;
}

TEST(AuditSolution, FeasibleHandmadePasses) {
  const Scenario sc = two_cell_scenario();
  const CoverageModel cov(sc);
  const AuditReport report =
      analysis::audit_solution(sc, cov, feasible_two_cell_solution());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditSolution, OverCapacityUavIsReported) {
  Scenario sc = two_cell_scenario();
  sc.fleet[UavId{0}].capacity = 1;  // deployment 0 now carries 2 > 1 users
  const CoverageModel cov(sc);
  const AuditReport report =
      analysis::audit_solution(sc, cov, feasible_two_cell_solution());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kSolutionOverCapacity))
      << report.to_string();
}

TEST(AuditSolution, DisconnectedRelayIsReported) {
  Scenario sc{
      .grid = Grid(600, 100, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,  // cells 0 and 5 are 500 m apart: no link
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{2, Radio{}, 120.0}, {2, Radio{}, 120.0}},
  };
  sc.users = {{{50, 50}, 1e3}, {{550, 50}, 1e3}};
  const CoverageModel cov(sc);
  Solution sol;
  sol.algorithm = "handmade";
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{5}}};
  sol.user_to_deployment = {0, 1};
  sol.served = 2;
  const AuditReport report = analysis::audit_solution(sc, cov, sol);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kSolutionDisconnected))
      << report.to_string();
}

TEST(AuditSolution, DuplicateUavAssignmentIsReported) {
  const Scenario sc = two_cell_scenario();
  const CoverageModel cov(sc);
  Solution sol = feasible_two_cell_solution();
  sol.deployments[1].uav = UavId{0};  // UAV 0 now deployed on both cells
  const AuditReport report = analysis::audit_solution(sc, cov, sol);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kSolutionUavReused))
      << report.to_string();
}

TEST(AuditSolution, IneligibleUserAndServedMismatchAreReported) {
  const Scenario sc = two_cell_scenario();
  const CoverageModel cov(sc);
  Solution sol = feasible_two_cell_solution();
  sol.user_to_deployment = {0, 1, 1};  // user 1 is 90 m from cell 1's
                                       // center — still in range; push it
  sol.served = 5;                      // and claim an impossible count
  const AuditReport report = analysis::audit_solution(sc, cov, sol);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kSolutionServedMismatch))
      << report.to_string();
}

TEST(AuditSolution, SharedCellIsReported) {
  const Scenario sc = two_cell_scenario();
  const CoverageModel cov(sc);
  Solution sol = feasible_two_cell_solution();
  sol.deployments[1].loc = LocationId{0};  // both UAVs on cell 0
  sol.user_to_deployment = {0, 0, -1};
  sol.served = 2;
  const AuditReport report = analysis::audit_solution(sc, cov, sol);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kSolutionCellShared))
      << report.to_string();
}

// ---------------------------------------------------------------------------
// audit_segment_plan mutations.

TEST(AuditPlan, ValidPlanPasses) {
  const SegmentPlan plan = compute_segment_plan(20, 3);
  const AuditReport report = analysis::audit_segment_plan(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditPlan, QuotaTamperingIsReported) {
  SegmentPlan plan = compute_segment_plan(20, 3);
  plan.quotas[1] += 1;  // Eq. 1 no longer holds
  const AuditReport report = analysis::audit_segment_plan(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kPlanQuotaMismatch))
      << report.to_string();
}

TEST(AuditPlan, RelayBoundTamperingIsReported) {
  SegmentPlan plan = compute_segment_plan(20, 3);
  plan.relay_bound -= 1;
  const AuditReport report = analysis::audit_segment_plan(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kPlanRelayBoundMismatch))
      << report.to_string();
}

TEST(AuditPlan, RelayBoundOverFleetIsReported) {
  SegmentPlan plan = compute_segment_plan(20, 3);
  plan.K = static_cast<std::int32_t>(plan.relay_bound) - 1;  // force g > K
  const AuditReport report = analysis::audit_segment_plan(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kPlanRelayBoundExceedsK))
      << report.to_string();
}

TEST(AuditPlan, BudgetSumTamperingIsReported) {
  SegmentPlan plan = compute_segment_plan(20, 3);
  plan.p.back() += 2;  // Σp != L_max − s
  const AuditReport report = analysis::audit_segment_plan(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kPlanBudgetSumMismatch))
      << report.to_string();
}

TEST(AuditPlan, MalformedShapeIsReported) {
  SegmentPlan plan = compute_segment_plan(20, 3);
  plan.p.pop_back();  // |p| != s + 1
  const AuditReport report = analysis::audit_segment_plan(plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kPlanBadShape))
      << report.to_string();
}

// ---------------------------------------------------------------------------
// audit_matroids mutations.

TEST(AuditMatroids, QuotaViolatingChosenSetIsReported) {
  // Line graph distances: quotas allow 1 node at hop >= 1; choose 2.
  const std::vector<std::int32_t> hops = {0, 1, 1, 2};
  const std::vector<std::int64_t> quotas = {4, 1, 1};
  HopBudgetMatroid m2(hops, quotas);
  const std::vector<LocationId> chosen = {LocationId{0}, LocationId{1}, LocationId{2}};
  const AuditReport report =
      analysis::audit_matroids(m2, chosen, {}, /*uav_count=*/4);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kMatroidQuotaExceeded))
      << report.to_string();
}

TEST(AuditMatroids, HopOverflowIsReported) {
  const std::vector<std::int32_t> hops = {0, 1, 5, kUnreachable};
  const std::vector<std::int64_t> quotas = {4, 2};
  HopBudgetMatroid m2(hops, quotas);
  const std::vector<LocationId> far = {LocationId{0}, LocationId{2}};
  EXPECT_TRUE(analysis::audit_matroids(m2, far, {}, 4)
                  .has(ViolationCode::kMatroidHopOverflow));
  const std::vector<LocationId> unreachable = {LocationId{0}, LocationId{3}};
  EXPECT_TRUE(analysis::audit_matroids(m2, unreachable, {}, 4)
                  .has(ViolationCode::kMatroidHopOverflow));
}

TEST(AuditMatroids, DuplicateUavDeploymentIsReported) {
  const std::vector<std::int32_t> hops = {0, 1};
  const std::vector<std::int64_t> quotas = {2, 1};
  HopBudgetMatroid m2(hops, quotas);
  const std::vector<Deployment> deployments = {{UavId{1}, LocationId{0}}, {UavId{1}, LocationId{1}}};
  const AuditReport report =
      analysis::audit_matroids(m2, {}, deployments, /*uav_count=*/3);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kMatroidUavReused))
      << report.to_string();
}

TEST(AuditMatroids, CleanGreedyStatePassesSampledAxioms) {
  // Independent chosen set on a path: axioms must hold on every sample.
  const std::vector<std::int32_t> hops = {0, 1, 2, 1, 0};
  const std::vector<std::int64_t> quotas = {5, 3, 1};
  HopBudgetMatroid m2(hops, quotas);
  const std::vector<LocationId> chosen = {LocationId{0}, LocationId{1}, LocationId{2}, LocationId{4}};
  ASSERT_TRUE(m2.is_independent(chosen));
  const std::vector<Deployment> deployments = {{UavId{0}, LocationId{0}},
                                             {UavId{1}, LocationId{1}},
                                             {UavId{2}, LocationId{2}},
                                             {UavId{3}, LocationId{4}}};
  const AuditReport report = analysis::audit_matroids(
      m2, chosen, deployments, /*uav_count=*/4, /*sample_rounds=*/64);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 10);
}

// ---------------------------------------------------------------------------
// audit_flow.

TEST(AuditFlow, MaximumFlowPasses) {
  DinicFlow flow;
  const auto s = flow.add_node();
  const auto a = flow.add_node();
  const auto t = flow.add_node();
  flow.add_edge(s, a, 2);
  flow.add_edge(a, t, 1);
  EXPECT_EQ(flow.augment(s, t), 1);
  const AuditReport report = analysis::audit_flow(flow, s, t, 1);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0);
}

TEST(AuditFlow, UnaugmentedNetworkIsNotMaximum) {
  DinicFlow flow;
  const auto s = flow.add_node();
  const auto t = flow.add_node();
  flow.add_edge(s, t, 1);
  // No augment() call: the zero flow is conserved but not maximum.
  const AuditReport report = analysis::audit_flow(flow, s, t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kFlowNotMaximum))
      << report.to_string();
}

TEST(AuditFlow, ValueMismatchIsReported) {
  DinicFlow flow;
  const auto s = flow.add_node();
  const auto t = flow.add_node();
  flow.add_edge(s, t, 3);
  EXPECT_EQ(flow.augment(s, t), 3);
  const AuditReport report = analysis::audit_flow(flow, s, t, 2);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationCode::kFlowValueMismatch))
      << report.to_string();
}

TEST(AuditFlow, LiveIncrementalAssignmentAuditsCleanAcrossScopes) {
  Rng rng(7);
  const Scenario sc = random_scenario(rng, 4, 15, 3);
  const CoverageModel cov(sc);
  IncrementalAssignment ia(sc, cov);
  const auto scope = ia.begin_scope();
  const auto candidates = cov.candidate_locations();
  ASSERT_FALSE(candidates.empty());
  ia.deploy(UavId{0}, candidates.front());
  EXPECT_TRUE(analysis::audit_assignment_flow(ia).ok());
  ia.end_scope(scope);
  // Rolled back to the empty network: still a clean (zero) maximum flow.
  EXPECT_TRUE(analysis::audit_assignment_flow(ia).ok());
}

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(AuditReport, RequireCleanThrowsStructuredError) {
  AuditReport report;
  report.subject = "unit";
  report.add(ViolationCode::kSolutionOverCapacity, "UAV 3 carries 9 > 4");
  try {
    analysis::require_clean(report);
    FAIL() << "require_clean must throw";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.report().violations.size(), 1u);
    EXPECT_TRUE(e.report().has(ViolationCode::kSolutionOverCapacity));
    EXPECT_NE(std::string(e.what()).find("solution.over_capacity"),
              std::string::npos);
  }
  // A clean report must not throw.
  EXPECT_NO_THROW(analysis::require_clean(AuditReport{}));
}

TEST(AuditReport, MergeAccumulatesViolationsAndChecks) {
  AuditReport a;
  a.checks = 3;
  a.add(ViolationCode::kFlowNotMaximum, "x");
  AuditReport b;
  b.checks = 4;
  b.add(ViolationCode::kPlanBadShape, "y");
  a.merge(b);
  EXPECT_EQ(a.checks, 7);
  EXPECT_EQ(a.violations.size(), 2u);
  EXPECT_TRUE(a.has(ViolationCode::kPlanBadShape));
}

TEST(Audit, SolverAuditCatchesTamperedPlanViaParams) {
  // End-to-end negative: sabotage detection inside appro_alg itself is
  // covered by the per-round auditors; here we at least pin the error
  // type surfaced to callers when an auditor trips.
  AuditReport report;
  report.subject = "x";
  report.add(ViolationCode::kMatroidQuotaExceeded, "detail");
  EXPECT_THROW(analysis::require_clean(report), ContractError);
}

}  // namespace
}  // namespace uavcov
