// Tests for src/graph: CSR graph, BFS, DSU, MST, Euler paths — randomized
// cross-checks against the naive oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/bfs.hpp"
#include "graph/dsu.hpp"
#include "graph/euler.hpp"
#include "graph/graph.hpp"
#include "graph/mst.hpp"
#include "graph/oracles.hpp"

namespace uavcov {
namespace {

std::vector<std::pair<NodeId, NodeId>> random_edges(NodeId n, double p,
                                                    Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) edges.emplace_back(u, v);
    }
  }
  return edges;
}

TEST(Graph, BuildAndNeighbors) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 3);
  const auto nb = g.neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(nb.begin(), nb.end()),
            (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(g.neighbors(3).empty());
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, HasEdgeIsSymmetric) {
  const Graph g = Graph::from_edges(3, {{0, 2}});
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, RejectsSelfLoopAndParallel) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), ContractError);
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), ContractError);
  EXPECT_THROW(Graph::from_edges(2, {{0, 5}}), ContractError);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(LocationGraph, EdgesExactlyWithinRange) {
  const Grid grid(300, 300, 100);  // centers 100 apart
  const Graph g = build_location_graph(grid, 150.0);
  // 150 m connects 4-neighbors (100 m) and rejects diagonals (141.4 < 150!)
  // — actually sqrt(2)*100 = 141.4 <= 150, so diagonals connect too.
  EXPECT_TRUE(g.has_edge(to_node(grid.id_of(0, 0)), to_node(grid.id_of(0, 1))));
  EXPECT_TRUE(g.has_edge(to_node(grid.id_of(0, 0)), to_node(grid.id_of(1, 1))));
  EXPECT_FALSE(g.has_edge(to_node(grid.id_of(0, 0)), to_node(grid.id_of(0, 2))));
}

TEST(LocationGraph, ActiveMaskDropsEdges) {
  const Grid grid(300, 300, 100);
  std::vector<bool> active(static_cast<std::size_t>(grid.size()), true);
  active[grid.id_of(0, 1).index()] = false;
  const Graph g = build_location_graph(grid, 110.0, active);
  EXPECT_FALSE(g.has_edge(to_node(grid.id_of(0, 0)), to_node(grid.id_of(0, 1))));
  EXPECT_TRUE(g.has_edge(to_node(grid.id_of(0, 0)), to_node(grid.id_of(1, 0))));
}

TEST(Bfs, LineGraphDistances) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableMarked) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, MultiSourceTakesMinimum) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const NodeId sources[] = {0, 4};
  const auto d = bfs_distances(g, sources);
  EXPECT_EQ(d, (std::vector<std::int32_t>{0, 1, 2, 1, 0}));
}

class BfsRandom : public testing::TestWithParam<int> {};

TEST_P(BfsRandom, MatchesFloydWarshall) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const NodeId n = 2 + static_cast<NodeId>(rng.next_below(14));
  const Graph g = Graph::from_edges(n, random_edges(n, 0.3, rng));
  const auto apsp = oracle::all_pairs_hops(g);
  for (NodeId s = 0; s < n; ++s) {
    EXPECT_EQ(bfs_distances(g, s), apsp[static_cast<std::size_t>(s)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsRandom, testing::Range(0, 15));

TEST(ShortestHopPath, ReconstructsValidPath) {
  Rng rng(77);
  const NodeId n = 12;
  const Graph g = Graph::from_edges(n, random_edges(n, 0.25, rng));
  const auto apsp = oracle::all_pairs_hops(g);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const auto path = shortest_hop_path(g, a, b);
      const auto d = apsp[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (d == kUnreachable) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_EQ(static_cast<std::int32_t>(path.size()), d + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
      }
    }
  }
}

TEST(InducedConnectivity, DetectsBothCases) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  const NodeId connected[] = {0, 1, 2};
  const NodeId split[] = {0, 1, 3};
  const NodeId via_outside[] = {0, 2};  // connected only through node 1
  EXPECT_TRUE(is_induced_subgraph_connected(g, connected));
  EXPECT_FALSE(is_induced_subgraph_connected(g, split));
  EXPECT_FALSE(is_induced_subgraph_connected(g, via_outside));
}

TEST(InducedConnectivity, TrivialSets) {
  const Graph g = Graph::from_edges(3, {});
  EXPECT_TRUE(is_induced_subgraph_connected(g, {}));
  const NodeId one[] = {2};
  EXPECT_TRUE(is_induced_subgraph_connected(g, one));
}

TEST(ConnectedComponents, LabelsByComponent) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {3, 4}});
  const auto label = connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_NE(label[2], label[3]);
}

TEST(Dsu, UniteAndFind) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.component_count(), 5);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_EQ(dsu.component_count(), 4);
  EXPECT_EQ(dsu.component_size(1), 2);
}

class MstRandom : public testing::TestWithParam<int> {};

TEST_P(MstRandom, KruskalPrimAndBruteForceAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  const NodeId n = 2 + static_cast<NodeId>(rng.next_below(5));
  std::vector<WeightedEdge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(0.7)) {
        edges.push_back({u, v, rng.uniform(1.0, 10.0)});
      }
    }
  }
  if (edges.size() > 20) edges.resize(20);
  const auto kruskal = kruskal_mst(n, edges);
  const double brute = oracle::brute_force_mst_weight(n, edges);
  if (!kruskal.has_value()) {
    EXPECT_TRUE(std::isinf(brute));
    return;
  }
  double kruskal_weight = 0;
  for (const auto& e : *kruskal) kruskal_weight += e.weight;
  EXPECT_NEAR(kruskal_weight, brute, 1e-9);

  // Dense Prim on the same instance.
  std::vector<double> w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                        kInfiniteWeight);
  for (NodeId i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
      static_cast<std::size_t>(i)] = 0;
  }
  for (const auto& e : edges) {
    auto& a = w[static_cast<std::size_t>(e.u) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(e.v)];
    auto& b = w[static_cast<std::size_t>(e.v) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(e.u)];
    a = std::min(a, e.weight);
    b = std::min(b, e.weight);
  }
  const auto prim = prim_mst_dense(w, n);
  ASSERT_TRUE(prim.has_value());
  EXPECT_NEAR(mst_weight_dense(w, n, *prim), brute, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstRandom, testing::Range(0, 20));

TEST(Mst, DisconnectedReturnsNullopt) {
  EXPECT_FALSE(kruskal_mst(3, {{0, 1, 1.0}}).has_value());
  std::vector<double> w(9, kInfiniteWeight);
  w[0] = w[4] = w[8] = 0;
  EXPECT_FALSE(prim_mst_dense(w, 3).has_value());
}

TEST(Mst, SingleNode) {
  const auto tree = kruskal_mst(1, {});
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->empty());
}

TEST(Euler, PathOverSimpleMultigraph) {
  // Path graph 0-1-2 has two odd-degree nodes → Euler path exists.
  const auto path = euler_path(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
}

TEST(Euler, NoPathWithFourOddNodes) {
  // Star with 3 leaves: degrees 3,1,1,1 → four odd nodes.
  EXPECT_FALSE(euler_path(4, {{0, 1}, {0, 2}, {0, 3}}).has_value());
}

TEST(Euler, DisconnectedEdgesRejected) {
  EXPECT_FALSE(euler_path(4, {{0, 1}, {2, 3}}).has_value());
}

class EulerTreeRandom : public testing::TestWithParam<int> {};

TEST_P(EulerTreeRandom, DoubledTreeWalkVisitsEveryNode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  const NodeId n = 1 + static_cast<NodeId>(rng.next_below(12));
  std::vector<std::pair<NodeId, NodeId>> tree;
  for (NodeId v = 1; v < n; ++v) {
    tree.emplace_back(static_cast<NodeId>(rng.next_below(
                          static_cast<std::uint64_t>(v))),
                      v);
  }
  const auto walk = tree_double_euler_path(n, tree);
  if (n == 1) {
    EXPECT_EQ(walk, std::vector<NodeId>{0});
    return;
  }
  EXPECT_EQ(walk.size(), 2 * static_cast<std::size_t>(n) - 2);
  std::set<NodeId> visited(walk.begin(), walk.end());
  EXPECT_EQ(static_cast<NodeId>(visited.size()), n);
  // Consecutive walk nodes must be tree edges.
  std::set<std::pair<NodeId, NodeId>> edge_set;
  for (auto [u, v] : tree) {
    edge_set.insert({u, v});
    edge_set.insert({v, u});
  }
  for (std::size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(edge_set.count({walk[i - 1], walk[i]}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerTreeRandom, testing::Range(0, 12));

TEST(SplitPath, ChunksOfL) {
  const std::vector<NodeId> path{0, 1, 2, 3, 4, 5, 6};
  const auto chunks = split_path(path, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(chunks[2], (std::vector<NodeId>{6}));
}

TEST(SplitPath, ExactDivision) {
  const auto chunks = split_path({1, 2, 3, 4}, 2);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1], (std::vector<NodeId>{3, 4}));
}

// The paper's Fig. 2 pipeline: K = 11 tree → doubled Euler path of 2K−2 =
// 20 node visits → Δ = ⌈20/10⌉ = 2 subpaths of L = 10.
TEST(EulerPipeline, PaperFigure2Shape) {
  const NodeId k = 11;
  std::vector<std::pair<NodeId, NodeId>> tree;
  for (NodeId v = 1; v < k; ++v) tree.emplace_back(v - 1, v);  // a path tree
  const auto walk = tree_double_euler_path(k, tree);
  EXPECT_EQ(walk.size(), 20u);
  const auto chunks = split_path(walk, 10);
  EXPECT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].size(), 10u);
  EXPECT_EQ(chunks[1].size(), 10u);
}

}  // namespace
}  // namespace uavcov
