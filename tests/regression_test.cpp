// Golden regression suite: every algorithm's exact served count on a
// pinned scenario (seed 12345, n = 400, K = 8, s = 2, cap 25).
//
// The entire pipeline is deterministic by construction (portable RNG,
// tie-break rules, no floating-point reductions whose order varies), so
// any change to these numbers is a *behavioral* change — either a bug or
// an intentional algorithm improvement.  When intentional, update the
// constants here and say why in the commit.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/fingerprint.hpp"
#include "core/segment_plan.hpp"
#include "eval/experiment.hpp"
#include "stream/engine.hpp"

namespace uavcov {
namespace {

eval::RunConfig pinned_config() {
  eval::RunConfig config;
  config.scenario.user_count = 400;
  config.scenario.fleet.uav_count = 8;
  config.appro.s = 2;
  config.appro.candidate_cap = 25;
  config.run_random = true;
  config.seed = 12345;
  return config;
}

TEST(Regression, ServedCountsPinned) {
  const auto results = eval::run_all(pinned_config());
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].name, "approAlg");
  EXPECT_EQ(results[0].served, 343);
  EXPECT_EQ(results[1].name, "maxThroughput");
  EXPECT_EQ(results[1].served, 333);
  EXPECT_EQ(results[2].name, "MotionCtrl");
  EXPECT_EQ(results[2].served, 317);
  EXPECT_EQ(results[3].name, "MCS");
  EXPECT_EQ(results[3].served, 348);
  EXPECT_EQ(results[4].name, "GreedyAssign");
  EXPECT_EQ(results[4].served, 340);
  EXPECT_EQ(results[5].name, "RandomConnected");
  EXPECT_EQ(results[5].served, 282);
}

/// One pinned instance for the fingerprint suite below.
struct GoldenScenario {
  std::uint64_t seed;
  std::int32_t users;
  std::int32_t uavs;
  std::int32_t s;
  /// Expected table: one line per algorithm, "name served 0x<fingerprint>",
  /// preceded by a "scenario 0x<fingerprint>" line.  Produced by
  /// golden_table() — on mismatch gtest prints the actual table, which is
  /// the replacement text when the change is intentional.
  const char* table;
};

std::string golden_table(const GoldenScenario& g) {
  eval::RunConfig config;
  config.seed = g.seed;
  config.scenario.user_count = g.users;
  config.scenario.fleet.uav_count = g.uavs;
  config.appro.s = g.s;
  config.appro.candidate_cap = 25;
  config.run_random = true;

  Rng rng(config.seed);
  const Scenario scenario =
      workload::make_disaster_scenario(config.scenario, rng);
  const CoverageModel coverage(scenario);
  std::ostringstream out;
  out << "scenario " << fingerprint_hex(scenario.fingerprint()) << "\n";
  for (const eval::AlgoResult& r :
       eval::run_all_on(scenario, coverage, config)) {
    out << r.name << " " << r.served << " " << fingerprint_hex(r.fingerprint)
        << "\n";
  }
  return out.str();
}

// Served counts alone can stay stable while the actual deployment drifts
// (two different placements often serve the same number of users), so this
// suite additionally pins the FNV-1a fingerprint of every solution — any
// change to deployments, the assignment vector, or the generator itself
// trips it.  Update the tables only for intentional behavioral changes and
// say why in the commit.
TEST(Regression, SolutionFingerprintsPinned) {
  const std::vector<GoldenScenario> goldens = {
      {12345, 400, 8, 2,
       "scenario 0x8cce6cc85b76dcea\n"
       "approAlg 343 0x6f1fe2aa0bc1f187\n"
       "maxThroughput 333 0x41fc3858a026801b\n"
       "MotionCtrl 317 0x2c33d1bc0590bbdf\n"
       "MCS 348 0x79bba34310e3e2b6\n"
       "GreedyAssign 340 0x612f636ad2a8ca69\n"
       "RandomConnected 282 0x649e6df295912576\n"},
      {777, 250, 6, 1,
       "scenario 0x3b6712449fb6c03f\n"
       "approAlg 171 0x875d263e6f27e6d6\n"
       "maxThroughput 171 0x51cd4b6d8b871196\n"
       "MotionCtrl 175 0x04dc5d804b384a80\n"
       "MCS 182 0xd69231b5a7a2dbfb\n"
       "GreedyAssign 170 0xc5ca33cad9d01165\n"
       "RandomConnected 132 0xdb19361ba1812094\n"},
      {2024, 300, 8, 2,
       "scenario 0xb697422d2686acd4\n"
       "approAlg 211 0x7697e56422677f92\n"
       "maxThroughput 176 0xef263b0f2cca5431\n"
       "MotionCtrl 202 0x025e99b93b7f7b2a\n"
       "MCS 216 0x094896b47ccc2e0e\n"
       "GreedyAssign 244 0xcd6995fb2582376a\n"
       "RandomConnected 106 0x80ca387f99b79728\n"},
      {31337, 350, 10, 1,
       "scenario 0x863c5a5c6d07dfaa\n"
       "approAlg 294 0x3bb0120f2eccf44f\n"
       "maxThroughput 293 0x787d1019c81c88e6\n"
       "MotionCtrl 300 0x24563036623fbd66\n"
       "MCS 317 0xa35b5e8f02258fdf\n"
       "GreedyAssign 288 0x0166c8166247d992\n"
       "RandomConnected 171 0x3e70a19e1f46de1a\n"},
      {555, 450, 7, 2,
       "scenario 0x0db08b778a55f664\n"
       "approAlg 365 0xb45ee5fc64743fa8\n"
       "maxThroughput 270 0xee523c3df4dbf851\n"
       "MotionCtrl 336 0xc10c1ed1bc3012d4\n"
       "MCS 370 0x0935cffb6ca266c4\n"
       "GreedyAssign 355 0xddd567a538bd8897\n"
       "RandomConnected 240 0x288c89d246ae6234\n"},
      {9090, 500, 9, 2,
       "scenario 0x121b48f80e89feb8\n"
       "approAlg 339 0x3165881080904f38\n"
       "maxThroughput 314 0x5040773438a13950\n"
       "MotionCtrl 277 0xdd7d910d7aa16a48\n"
       "MCS 404 0x9578f99b86d51d82\n"
       "GreedyAssign 309 0xd9974e3d430a6274\n"
       "RandomConnected 190 0x1ae5659929d9741e\n"},
  };
  for (const GoldenScenario& g : goldens) {
    const std::string actual = golden_table(g);
    EXPECT_EQ(actual, g.table)
        << "seed " << g.seed << ": paste the table below if intentional\n"
        << actual;
  }
}

/// Streamed-churn golden: run the pinned trace through the StreamEngine
/// and pin the whole run's identity — trace fingerprint, escalation
/// pattern, and the final standing solution.  Any change to the trace
/// generator, ingest, patch path, or hysteresis trips it.
std::string streamed_table(std::uint64_t seed) {
  Rng rng(seed);
  workload::ScenarioConfig scenario_config;
  scenario_config.width_m = 1500;
  scenario_config.height_m = 1500;
  scenario_config.cell_side_m = 300;
  scenario_config.user_count = 40;
  scenario_config.fleet.uav_count = 5;
  scenario_config.fleet.capacity_min = 10;
  scenario_config.fleet.capacity_max = 30;
  const Scenario base =
      workload::make_disaster_scenario(scenario_config, rng);

  stream::ChurnTraceConfig trace_config;
  trace_config.epochs = 6;
  trace_config.max_arrivals_per_epoch = 5;
  trace_config.max_departures_per_epoch = 4;
  trace_config.flash_crowd_epoch = 3;
  trace_config.flash_crowd_size = 12;
  const stream::ChurnTrace trace =
      stream::generate_trace(base, trace_config, seed * 7 + 1);

  stream::StreamPolicy policy;
  policy.appro.s = 2;
  policy.appro.max_seed_subsets = 64;
  stream::StreamEngine engine(base, policy);
  const std::vector<stream::EpochResult> results = engine.run(trace);

  std::ostringstream out;
  out << "scenario " << fingerprint_hex(base.fingerprint()) << "\n";
  out << "trace " << fingerprint_hex(trace.fingerprint()) << "\n";
  out << "escalations";
  for (const stream::EpochResult& r : results) {
    out << " " << (r.full_solve ? "full" : "patch");
  }
  out << "\n";
  const stream::EpochResult& last = results.back();
  out << "final " << last.solution.served << " "
      << fingerprint_hex(last.solution.fingerprint()) << " "
      << fingerprint_hex(last.scenario_fingerprint) << "\n";
  return out.str();
}

TEST(Regression, StreamedTraceFingerprintsPinned) {
  struct GoldenStream {
    std::uint64_t seed;
    const char* table;
  };
  const std::vector<GoldenStream> goldens = {
      {11,
       "scenario 0x034bcccabd89e78d\n"
       "trace 0xe1bb9189f23e0376\n"
       "escalations full patch patch patch patch patch\n"
       "final 50 0x86b297281cf4e4f6 0x4f450f7e2ba1f02f\n"},
      {66,
       "scenario 0x228602225abe5e38\n"
       "trace 0x8a45e88077c54e1d\n"
       "escalations full patch patch patch full patch\n"
       "final 55 0x9d13d9509a8664b1 0xaae14cd3fc7a3d05\n"},
  };
  for (const GoldenStream& g : goldens) {
    const std::string actual = streamed_table(g.seed);
    EXPECT_EQ(actual, g.table)
        << "seed " << g.seed << ": paste the table below if intentional\n"
        << actual;
  }
}

TEST(Regression, SegmentPlansPinned) {
  // Algorithm 1 outputs for the evaluation's K = 20 fleet.
  {
    const SegmentPlan plan = compute_segment_plan(20, 1);
    EXPECT_EQ(plan.L_max, 8);
    EXPECT_EQ(plan.p, (std::vector<std::int64_t>{4, 3}));
    EXPECT_EQ(plan.h_max, 4);
    EXPECT_EQ(plan.relay_bound, 17);
  }
  {
    const SegmentPlan plan = compute_segment_plan(20, 2);
    EXPECT_EQ(plan.L_max, 10);
    EXPECT_EQ(plan.relay_bound, 18);
  }
  {
    const SegmentPlan plan = compute_segment_plan(20, 3);
    EXPECT_EQ(plan.L_max, 12);
    EXPECT_LE(plan.relay_bound, 20);
  }
}

TEST(Regression, TheoreticalRatiosPinned) {
  EXPECT_NEAR(theoretical_approximation_ratio(20, 3), 1.0 / 12.0, 1e-12);
  EXPECT_NEAR(theoretical_approximation_ratio(20, 1), 1.0 / 15.0, 1e-12);
  EXPECT_NEAR(theoretical_approximation_ratio(10, 2), 1.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace uavcov
