// Golden regression suite: every algorithm's exact served count on a
// pinned scenario (seed 12345, n = 400, K = 8, s = 2, cap 25).
//
// The entire pipeline is deterministic by construction (portable RNG,
// tie-break rules, no floating-point reductions whose order varies), so
// any change to these numbers is a *behavioral* change — either a bug or
// an intentional algorithm improvement.  When intentional, update the
// constants here and say why in the commit.
#include <gtest/gtest.h>

#include "core/segment_plan.hpp"
#include "eval/experiment.hpp"

namespace uavcov {
namespace {

eval::RunConfig pinned_config() {
  eval::RunConfig config;
  config.scenario.user_count = 400;
  config.scenario.fleet.uav_count = 8;
  config.appro.s = 2;
  config.appro.candidate_cap = 25;
  config.run_random = true;
  config.seed = 12345;
  return config;
}

TEST(Regression, ServedCountsPinned) {
  const auto results = eval::run_all(pinned_config());
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].name, "approAlg");
  EXPECT_EQ(results[0].served, 343);
  EXPECT_EQ(results[1].name, "maxThroughput");
  EXPECT_EQ(results[1].served, 333);
  EXPECT_EQ(results[2].name, "MotionCtrl");
  EXPECT_EQ(results[2].served, 317);
  EXPECT_EQ(results[3].name, "MCS");
  EXPECT_EQ(results[3].served, 348);
  EXPECT_EQ(results[4].name, "GreedyAssign");
  EXPECT_EQ(results[4].served, 340);
  EXPECT_EQ(results[5].name, "RandomConnected");
  EXPECT_EQ(results[5].served, 282);
}

TEST(Regression, SegmentPlansPinned) {
  // Algorithm 1 outputs for the evaluation's K = 20 fleet.
  {
    const SegmentPlan plan = compute_segment_plan(20, 1);
    EXPECT_EQ(plan.L_max, 8);
    EXPECT_EQ(plan.p, (std::vector<std::int64_t>{4, 3}));
    EXPECT_EQ(plan.h_max, 4);
    EXPECT_EQ(plan.relay_bound, 17);
  }
  {
    const SegmentPlan plan = compute_segment_plan(20, 2);
    EXPECT_EQ(plan.L_max, 10);
    EXPECT_EQ(plan.relay_bound, 18);
  }
  {
    const SegmentPlan plan = compute_segment_plan(20, 3);
    EXPECT_EQ(plan.L_max, 12);
    EXPECT_LE(plan.relay_bound, 20);
  }
}

TEST(Regression, TheoreticalRatiosPinned) {
  EXPECT_NEAR(theoretical_approximation_ratio(20, 3), 1.0 / 12.0, 1e-12);
  EXPECT_NEAR(theoretical_approximation_ratio(20, 1), 1.0 / 15.0, 1e-12);
  EXPECT_NEAR(theoretical_approximation_ratio(10, 2), 1.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace uavcov
