// Tests for Solution/validate_solution: the audit must catch every class
// of constraint violation (§II-C).
#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "core/solution.hpp"

namespace uavcov {
namespace {

/// Scenario: 3×1 cells of 100 m, two users, two UAVs.
Scenario make_scenario() {
  Scenario sc{
      .grid = Grid(300, 100, 100),
      .altitude_m = 50.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {{{50, 50}, 1e3}, {{250, 50}, 1e3}},
      .fleet = {{1, Radio{}, 120.0}, {1, Radio{}, 120.0}},
  };
  return sc;
}

Solution valid_solution() {
  Solution sol;
  sol.algorithm = "test";
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{1}}};
  sol.user_to_deployment = {0, -1};
  sol.served = 1;
  return sol;
}

TEST(ValidateSolution, AcceptsAFeasibleSolution) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  EXPECT_NO_THROW(validate_solution(sc, cov, valid_solution()));
}

TEST(ValidateSolution, EmptySolutionIsFeasible) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  Solution sol;
  sol.user_to_deployment = {-1, -1};
  EXPECT_NO_THROW(validate_solution(sc, cov, sol));
}

TEST(ValidateSolution, RejectsTooManyDeployments) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  sol.deployments = {{UavId{0}, LocationId{0}},
                     {UavId{1}, LocationId{1}},
                     {UavId{0}, LocationId{2}}};
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsDuplicateUav) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{0}, LocationId{1}}};
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsSharedCell) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{0}}};
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsDisconnectedNetwork) {
  const Scenario sc = make_scenario();  // R_uav = 150, cells 100 apart
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{2}}};  // 200 m apart → disconnected
  sol.user_to_deployment = {0, 1};
  sol.served = 2;
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsIneligibleServing) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  // User 1 sits 250 m from cell 0 — far outside R_user = 120.
  sol.user_to_deployment = {0, 0};
  sol.served = 2;
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsOverCapacity) {
  Scenario sc = make_scenario();
  sc.users.push_back({{60, 50}, 1e3});  // second user near cell 0
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  sol.user_to_deployment = {0, -1, 0};  // two users on a capacity-1 UAV
  sol.served = 2;
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsInconsistentServedCount) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  Solution sol = valid_solution();
  sol.served = 2;  // assignment vector says 1
  EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
}

TEST(ValidateSolution, RejectsBadIndices) {
  const Scenario sc = make_scenario();
  const CoverageModel cov(sc);
  {
    Solution sol = valid_solution();
    sol.deployments[0].uav = UavId{7};
    EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
  }
  {
    Solution sol = valid_solution();
    sol.deployments[0].loc = LocationId{99};
    EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
  }
  {
    Solution sol = valid_solution();
    sol.user_to_deployment = {5, -1};
    EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
  }
  {
    Solution sol = valid_solution();
    sol.user_to_deployment = {0};  // wrong size
    EXPECT_THROW(validate_solution(sc, cov, sol), ContractError);
  }
}

TEST(DeploymentsConnected, PairwiseRangeGraph) {
  const Scenario sc = make_scenario();
  EXPECT_TRUE(deployments_connected(sc, {}));
  EXPECT_TRUE(deployments_connected(sc, {{UavId{0}, LocationId{2}}}));
  EXPECT_TRUE(deployments_connected(
      sc, {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{1}}}));
  EXPECT_FALSE(deployments_connected(
      sc, {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{2}}}));
}

TEST(Solution, LoadOfCountsAssignedUsers) {
  Solution sol = valid_solution();
  sol.user_to_deployment = {0, 0};
  EXPECT_EQ(sol.load_of(0), 2);
  EXPECT_EQ(sol.load_of(1), 0);
}

}  // namespace
}  // namespace uavcov
