// Property tests for the paper's mathematical claims, checked empirically
// on randomized instances:
//   * the coverage function f(A) (users served by a set of (uav, loc)
//     pairs, §III-B) is monotone and submodular;
//   * Lemma 2: any M2-independent set containing the seeds stitches into
//     a connected subgraph of at most g(L, p) nodes — provided consecutive
//     seeds are within their planned segment budgets;
//   * Lemma 1: the assignment subroutine is optimal (covered elsewhere) and
//     its value never exceeds min(n, total capacity).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "core/assignment.hpp"
#include "core/matroid.hpp"
#include "core/relay.hpp"
#include "core/segment_plan.hpp"
#include "graph/bfs.hpp"

namespace uavcov {
namespace {

Scenario random_scenario(Rng& rng, std::int32_t cells_x,
                         std::int32_t cells_y, std::int32_t users,
                         std::vector<std::int32_t> capacities) {
  Scenario sc{
      .grid = Grid(cells_x * 100.0, cells_y * 100.0, 100.0),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t i = 0; i < users; ++i) {
    sc.users.push_back({{rng.uniform(0, cells_x * 100.0),
                         rng.uniform(0, cells_y * 100.0)},
                        1e3});
  }
  for (std::int32_t c : capacities) sc.fleet.push_back({c, Radio{}, 120.0});
  return sc;
}

/// f(A) of §III-B: users served by the deployments in A (optimal
/// assignment value).
std::int64_t coverage_value(const Scenario& sc, const CoverageModel& cov,
                            const std::vector<Deployment>& a) {
  return solve_assignment(sc, cov, a).served;
}

class CoverageFunctionProperties : public testing::TestWithParam<int> {};

TEST_P(CoverageFunctionProperties, MonotoneAndSubmodular) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const Scenario sc = random_scenario(rng, 4, 3, 15, {2, 3, 1, 2, 3});
  const CoverageModel cov(sc);

  // Random chain A ⊆ B and an extra element e ∉ B over distinct cells.
  std::vector<LocationId> cells;
  for (const LocationId v : sc.grid.cells()) cells.push_back(v);
  rng.shuffle(cells);
  std::vector<Deployment> b;
  for (const UavId k : IdRange<UavId>{4}) {
    b.push_back({k, cells[k.index()]});
  }
  const Deployment e{UavId{4}, cells[4]};
  std::vector<Deployment> a(b.begin(), b.begin() + 2);

  const auto f = [&](std::vector<Deployment> set) {
    return coverage_value(sc, cov, set);
  };
  auto with = [](std::vector<Deployment> set, const Deployment& extra) {
    set.push_back(extra);
    return set;
  };

  // Monotonicity: f(A) <= f(B) and adding e never decreases value.
  EXPECT_LE(f(a), f(b));
  EXPECT_GE(f(with(a, e)), f(a));
  EXPECT_GE(f(with(b, e)), f(b));

  // Submodularity: marginal of e shrinks from A to B.
  EXPECT_GE(f(with(a, e)) - f(a), f(with(b, e)) - f(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageFunctionProperties,
                         testing::Range(0, 30));

TEST(CoverageFunctionProperties, ValueBounds) {
  Rng rng(12);
  const Scenario sc = random_scenario(rng, 4, 3, 25, {2, 3, 4});
  const CoverageModel cov(sc);
  std::vector<Deployment> deps{{UavId{0}, LocationId{0}},
                               {UavId{1}, LocationId{5}},
                               {UavId{2}, LocationId{9}}};
  const auto served = coverage_value(sc, cov, deps);
  EXPECT_LE(served, sc.total_capacity());
  EXPECT_LE(served, sc.user_count());
}

/// Lemma 2, checked constructively: pick a segment plan, pick seeds on a
/// grid-graph path respecting the p budgets, draw a random M2-independent
/// superset, stitch, and verify |G_j| <= g(L_max, p*).
class Lemma2Empirical : public testing::TestWithParam<int> {};

TEST_P(Lemma2Empirical, StitchedSizeWithinBound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 709 + 3);
  const std::int32_t K =
      6 + static_cast<std::int32_t>(rng.next_below(12));
  const std::int32_t s =
      1 + static_cast<std::int32_t>(rng.next_below(3));
  if (s > K) GTEST_SKIP();
  const SegmentPlan plan = compute_segment_plan(K, s);

  // Location graph: a generous grid so hop geometry is flexible.
  const Grid grid(3000, 3000, 100);
  const Graph g = build_location_graph(grid, 150.0);

  // Seeds along one grid row, consecutive seeds separated by at most
  // (p*_i + 1) hops (the Lemma's precondition: ≤ p_i intermediates).
  std::vector<LocationId> seeds;
  std::int32_t col = 0;
  const std::int32_t row = 10;
  seeds.push_back(grid.id_of(row, col));
  for (std::int32_t i = 2; i <= s; ++i) {
    const auto budget = plan.p[SegmentId{i - 1}];
    col += 1 + static_cast<std::int32_t>(
                   rng.next_below(static_cast<std::uint64_t>(budget) + 1));
    ASSERT_LT(col, grid.cols());
    seeds.push_back(grid.id_of(row, col));
  }

  // Random M2-independent superset of the seeds.
  std::vector<NodeId> seed_nodes;
  for (const LocationId v : seeds) seed_nodes.push_back(to_node(v));
  const auto dist = bfs_distances(g, seed_nodes);
  HopBudgetMatroid m2(dist, plan.quotas);
  std::vector<LocationId> chosen = seeds;
  for (const LocationId v : seeds) m2.add(v);
  std::vector<LocationId> shuffled;
  for (NodeId v = 0; v < g.node_count(); ++v) shuffled.push_back(to_cell(v));
  rng.shuffle(shuffled);
  for (const LocationId v : shuffled) {
    if (static_cast<std::int32_t>(chosen.size()) >= plan.L_max) break;
    if (std::find(chosen.begin(), chosen.end(), v) != chosen.end()) continue;
    if (m2.can_add(v)) {
      m2.add(v);
      chosen.push_back(v);
    }
  }

  const auto relay = stitch_connected(g, chosen);
  ASSERT_TRUE(relay.has_value());
  EXPECT_LE(static_cast<std::int64_t>(relay->nodes.size()),
            plan.relay_bound)
      << "K=" << K << " s=" << s << " |V'|=" << chosen.size();
  EXPECT_LE(plan.relay_bound, K);
  std::vector<NodeId> relay_nodes;
  for (const CellId c : relay->nodes) relay_nodes.push_back(to_node(c));
  EXPECT_TRUE(is_induced_subgraph_connected(g, relay_nodes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Empirical, testing::Range(0, 20));

/// Theorem 1 consistency: Algorithm 1's L_max is never worse than the
/// closed-form L_1 the ratio proof uses (the plan dominates the analysis).
TEST(Theorem1, PlanDominatesClosedFormL1) {
  for (std::int32_t s = 1; s <= 4; ++s) {
    for (std::int32_t K = std::max(2, s); K <= 60; ++K) {
      const double under = 4.0 * s * K + 4.0 * s * s - 8.5 * s;
      if (under < 0) continue;
      const auto l1 =
          static_cast<std::int64_t>(std::floor(std::sqrt(under))) - 2 * s + 2;
      if (l1 < static_cast<std::int64_t>(s)) continue;
      const SegmentPlan plan = compute_segment_plan(K, s);
      EXPECT_GE(plan.L_max, l1) << "K=" << K << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace uavcov
