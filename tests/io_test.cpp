// Tests for the io module: save/load round trips, format robustness.
#include <gtest/gtest.h>

#include <sstream>

#include "core/appro_alg.hpp"
#include "io/serialize.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

Scenario sample_scenario() {
  Rng rng(314);
  workload::ScenarioConfig config;
  config.width_m = 1200;
  config.height_m = 900;
  config.cell_side_m = 300;
  config.user_count = 40;
  config.fleet.uav_count = 5;
  config.fleet.heavy_fraction = 0.4;  // exercise two radio classes
  return workload::make_disaster_scenario(config, rng);
}

TEST(ScenarioIo, RoundTripIsExact) {
  const Scenario original = sample_scenario();
  std::stringstream buffer;
  io::save_scenario(buffer, original);
  const Scenario loaded = io::load_scenario(buffer);

  EXPECT_EQ(loaded.grid.size(), original.grid.size());
  EXPECT_EQ(loaded.grid.cell_side(), original.grid.cell_side());
  EXPECT_EQ(loaded.altitude_m, original.altitude_m);
  EXPECT_EQ(loaded.uav_range_m, original.uav_range_m);
  EXPECT_EQ(loaded.channel.carrier_hz, original.channel.carrier_hz);
  EXPECT_EQ(loaded.receiver.noise_dbm, original.receiver.noise_dbm);
  ASSERT_EQ(loaded.users.size(), original.users.size());
  for (const UserId i : loaded.users.ids()) {
    EXPECT_EQ(loaded.users[i].pos, original.users[i].pos);
    EXPECT_EQ(loaded.users[i].min_rate_bps, original.users[i].min_rate_bps);
  }
  ASSERT_EQ(loaded.fleet.size(), original.fleet.size());
  for (const UavId k : loaded.fleet.ids()) {
    EXPECT_EQ(loaded.fleet[k].capacity, original.fleet[k].capacity);
    EXPECT_EQ(loaded.fleet[k].radio.tx_power_dbm,
              original.fleet[k].radio.tx_power_dbm);
    EXPECT_EQ(loaded.fleet[k].user_range_m, original.fleet[k].user_range_m);
  }
}

TEST(ScenarioIo, LoadedScenarioSolvesIdentically) {
  const Scenario original = sample_scenario();
  std::stringstream buffer;
  io::save_scenario(buffer, original);
  const Scenario loaded = io::load_scenario(buffer);
  ApproAlgParams params;
  params.s = 1;
  EXPECT_EQ(appro_alg(original, params).served,
            appro_alg(loaded, params).served);
}

TEST(ScenarioIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/uavcov_scenario.txt";
  const Scenario original = sample_scenario();
  io::save_scenario_file(path, original);
  const Scenario loaded = io::load_scenario_file(path);
  EXPECT_EQ(loaded.users.size(), original.users.size());
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored) {
  const Scenario original = sample_scenario();
  std::stringstream buffer;
  io::save_scenario(buffer, original);
  std::string text = buffer.str();
  text.insert(text.find('\n') + 1, "\n# a comment\n   \n");
  std::stringstream patched(text);
  EXPECT_NO_THROW(io::load_scenario(patched));
}

TEST(ScenarioIo, RejectsBadHeader) {
  std::stringstream bad("not-a-scenario v1\narea 100 100 100\n");
  EXPECT_THROW(io::load_scenario(bad), ContractError);
  std::stringstream wrong_version("uavcov-scenario v2\narea 100 100 100\n");
  EXPECT_THROW(io::load_scenario(wrong_version), ContractError);
  std::stringstream empty("");
  EXPECT_THROW(io::load_scenario(empty), ContractError);
}

TEST(ScenarioIo, RejectsUnknownRecordAndMalformedNumbers) {
  std::stringstream unknown(
      "uavcov-scenario v1\narea 300 300 100\nbogus 1 2 3\n");
  EXPECT_THROW(io::load_scenario(unknown), ContractError);
  std::stringstream bad_number(
      "uavcov-scenario v1\narea 300 300 abc\n");
  EXPECT_THROW(io::load_scenario(bad_number), ContractError);
}

TEST(ScenarioIo, RejectsInvalidLoadedScenario) {
  // Syntactically fine but no fleet → Scenario::validate must fire.
  std::stringstream no_fleet(
      "uavcov-scenario v1\narea 300 300 100\nuser 50 50 1000\n");
  EXPECT_THROW(io::load_scenario(no_fleet), ContractError);
}

TEST(SolutionIo, RoundTripIsExact) {
  const Scenario sc = sample_scenario();
  ApproAlgParams params;
  params.s = 1;
  const Solution original = appro_alg(sc, params);
  std::stringstream buffer;
  io::save_solution(buffer, original);
  const Solution loaded = io::load_solution(buffer, sc.user_count());
  EXPECT_EQ(loaded.algorithm, original.algorithm);
  EXPECT_EQ(loaded.served, original.served);
  EXPECT_EQ(loaded.deployments, original.deployments);
  EXPECT_EQ(loaded.user_to_deployment, original.user_to_deployment);
  // The loaded solution still passes the full §II-C audit.
  const CoverageModel cov(sc);
  EXPECT_NO_THROW(validate_solution(sc, cov, loaded));
}

// ---- Malformed-input hardening (src/fuzz found these paths; the raw-mode
// serialize fuzzer replays them from tests/fuzz/corpus) ------------------

TEST(ScenarioIo, RejectsTrailingTokensOnEveryRecord) {
  std::stringstream bad_magic("uavcov-scenario v1 extra\narea 300 300 100\n");
  EXPECT_THROW(io::load_scenario(bad_magic), ContractError);
  std::stringstream bad_area(
      "uavcov-scenario v1\narea 300 300 100 extra\n");
  EXPECT_THROW(io::load_scenario(bad_area), ContractError);
  std::stringstream bad_user(
      "uavcov-scenario v1\narea 300 300 100\nuser 50 50 1000 junk\n"
      "uav 500 100 200 5\n");
  EXPECT_THROW(io::load_scenario(bad_user), ContractError);
}

TEST(ScenarioIo, RejectsOverflowingAndNonFiniteGrids) {
  // 1e18 / 1e-9 cells would overflow int32; before hardening this was a
  // silent UB cast in Grid.
  std::stringstream huge(
      "uavcov-scenario v1\narea 1e18 1e18 1e-9\nuav 500 100 200 5\n");
  EXPECT_THROW(io::load_scenario(huge), ContractError);
  std::stringstream nan_area(
      "uavcov-scenario v1\narea nan 300 100\nuav 500 100 200 5\n");
  EXPECT_THROW(io::load_scenario(nan_area), ContractError);
}

TEST(SolutionIo, RejectsNegativeAndDanglingRecords) {
  std::stringstream neg_served(
      "uavcov-solution v1\nalgorithm x\nserved -1\n");
  EXPECT_THROW(io::load_solution(neg_served, 1), ContractError);
  std::stringstream neg_ids(
      "uavcov-solution v1\nalgorithm x\nserved 0\ndeployment -1 0\n");
  EXPECT_THROW(io::load_solution(neg_ids, 1), ContractError);
  // assignment referencing a deployment index that was never declared
  std::stringstream dangling(
      "uavcov-solution v1\nalgorithm x\nserved 1\nassignment 0 3\n");
  EXPECT_THROW(io::load_solution(dangling, 1), ContractError);
}

TEST(SolutionIo, RejectsDuplicateAssignmentForOneUser) {
  std::stringstream dup(
      "uavcov-solution v1\nalgorithm x\nserved 2\n"
      "deployment 0 0\ndeployment 1 1\n"
      "assignment 0 0\nassignment 0 1\n");
  EXPECT_THROW(io::load_solution(dup, 1), ContractError);
}

TEST(SolutionIo, AssignmentOutOfRangeRejected) {
  std::stringstream bad(
      "uavcov-solution v1\nalgorithm x\nserved 1\nassignment 99 0\n");
  EXPECT_THROW(io::load_solution(bad, 10), ContractError);
}

TEST(SolutionIo, EmptySolutionRoundTrip) {
  Solution empty;
  empty.algorithm = "none";
  empty.user_to_deployment.assign(7, -1);
  std::stringstream buffer;
  io::save_solution(buffer, empty);
  const Solution loaded = io::load_solution(buffer, 7);
  EXPECT_EQ(loaded.served, 0);
  EXPECT_TRUE(loaded.deployments.empty());
  EXPECT_EQ(loaded.user_to_deployment, empty.user_to_deployment);
}

}  // namespace
}  // namespace uavcov
