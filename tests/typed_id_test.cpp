// Tests for the strongly-typed index/quantity layer (common/typed.hpp):
// compile-time rejection probes, IdVector bounds behaviour under
// UAVCOV_DCHECK, hashing, and value round-trips.
#include "common/typed.hpp"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace uavcov {
namespace {

// ---------------------------------------------------------------------------
// Compile-time layout guarantees (the zero-cost claim).

static_assert(std::is_trivially_copyable_v<UserId>);
static_assert(std::is_trivially_copyable_v<CellId>);
static_assert(std::is_trivially_copyable_v<UavId>);
static_assert(std::is_trivially_copyable_v<SegmentId>);
static_assert(sizeof(UserId) == sizeof(std::uint32_t));
static_assert(sizeof(CellId) == sizeof(std::uint32_t));
static_assert(sizeof(UavId) == sizeof(std::uint32_t));
static_assert(sizeof(SegmentId) == sizeof(std::uint32_t));
static_assert(alignof(UserId) == alignof(std::int32_t));

// ---------------------------------------------------------------------------
// Compile-time rejection probes.  Each `requires` expression names an
// operation the layer must *not* provide; the static_asserts pin that the
// expression fails to compile (SFINAE-falls-out) rather than silently
// working.

// No implicit construction from integers.
static_assert(!std::is_convertible_v<int, UserId>);
static_assert(!std::is_convertible_v<std::int32_t, CellId>);
// Explicit construction works, including via static_cast.
static_assert(std::is_constructible_v<UserId, int>);
static_assert(std::is_constructible_v<CellId, std::size_t>);

// No cross-tag conversion or comparison.
static_assert(!std::is_constructible_v<UserId, CellId>);
static_assert(!std::is_constructible_v<UavId, SegmentId>);

template <class A, class B>
concept EqComparable = requires(A a, B b) { a == b; };
template <class A, class B>
concept LtComparable = requires(A a, B b) { a < b; };
template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };

static_assert(EqComparable<UserId, UserId>);
static_assert(LtComparable<UserId, UserId>);
static_assert(!EqComparable<UserId, CellId>);
static_assert(!EqComparable<UavId, SegmentId>);
static_assert(!LtComparable<UserId, CellId>);
// No comparison against raw integers either direction.
static_assert(!EqComparable<UserId, int>);
static_assert(!EqComparable<int, UserId>);
// An id plus an id (or an int) has no meaning.
static_assert(!Addable<UserId, UserId>);
static_assert(!Addable<UserId, int>);

// IdVector subscripts accept only the matching id type.
template <class V, class I>
concept Subscriptable = requires(V v, I i) { v[i]; };

static_assert(Subscriptable<IdVector<UserTag, int>, UserId>);
static_assert(!Subscriptable<IdVector<UserTag, int>, CellId>);
static_assert(!Subscriptable<IdVector<UserTag, int>, int>);
static_assert(!Subscriptable<IdVector<UserTag, int>, std::size_t>);

// Quantities: same-tag arithmetic only, explicit construction.
static_assert(!std::is_convertible_v<double, Meters>);
static_assert(std::is_constructible_v<Meters, double>);
static_assert(Addable<Meters, Meters>);
static_assert(!Addable<Meters, Dbm>);
static_assert(!EqComparable<Meters, Seconds>);
static_assert(std::is_trivially_copyable_v<Meters>);
static_assert(sizeof(Meters) == sizeof(double));

// ---------------------------------------------------------------------------
// Runtime behaviour.

TEST(StrongId, RoundTripsAndSentinel) {
  const UserId u{42};
  EXPECT_EQ(u.value(), 42);
  EXPECT_EQ(u.index(), std::size_t{42});
  EXPECT_TRUE(u.valid());

  const UserId inv = UserId::invalid();
  EXPECT_EQ(inv.value(), -1);
  EXPECT_FALSE(inv.valid());
  EXPECT_NE(u, inv);

  // static_cast goes through the explicit constructor.
  const auto c = static_cast<CellId>(7u);
  EXPECT_EQ(c.value(), 7);
}

TEST(StrongId, OrderingAndIncrement) {
  UavId k{3};
  EXPECT_LT(UavId{2}, k);
  EXPECT_EQ(++k, UavId{4});
  EXPECT_EQ(k++, UavId{4});
  EXPECT_EQ(k, UavId{5});
}

TEST(StrongId, HashMatchesUnderlyingAndDropsIntoUnorderedSet) {
  EXPECT_EQ(std::hash<UserId>{}(UserId{9}),
            std::hash<std::int32_t>{}(std::int32_t{9}));
  std::unordered_set<CellId> seen;
  seen.insert(CellId{1});
  seen.insert(CellId{2});
  seen.insert(CellId{1});
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.contains(CellId{2}));
  EXPECT_FALSE(seen.contains(CellId{3}));
}

TEST(IdRange, IteratesHalfOpenTypedRange) {
  std::vector<UserId> visited;
  for (const UserId u : IdRange<UserId>{3}) visited.push_back(u);
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited.front(), UserId{0});
  EXPECT_EQ(visited.back(), UserId{2});
  EXPECT_TRUE(IdRange<UavId>{0}.empty());
  EXPECT_EQ((IdRange<CellId>{CellId{2}, CellId{6}}.size()), 4);
}

TEST(IdVector, TypedSubscriptAndContainerBridge) {
  IdVector<UserTag, int> v{10, 20, 30};
  EXPECT_EQ(v[UserId{1}], 20);
  v[UserId{1}] = 21;
  EXPECT_EQ(v.raw()[1], 21);

  // Implicit bridge from std::vector keeps generator output ergonomic.
  const std::vector<int> raw{5, 6};
  const IdVector<UserTag, int> w = raw;
  EXPECT_EQ(w.ssize(), 2);
  EXPECT_EQ(w[UserId{0}], 5);

  // ids() walks exactly the valid typed indices.
  int sum = 0;
  for (const UserId u : w.ids()) sum += w[u];
  EXPECT_EQ(sum, 11);
  EXPECT_EQ(w.end_id(), UserId{2});
}

TEST(IdVector, VectorBoolProxyPassesThrough) {
  IdVector<UavTag, bool> used(4, false);
  used[UavId{2}] = true;
  EXPECT_TRUE(used[UavId{2}]);
  EXPECT_FALSE(used[UavId{0}]);
}

TEST(IdVector, AtAlwaysThrowsOutOfRange) {
  IdVector<CellTag, int> v(2, 0);
  EXPECT_EQ(v.at(CellId{1}), 0);
  EXPECT_THROW(v.at(CellId{2}), ContractError);
  EXPECT_THROW(v.at(CellId::invalid()), ContractError);
}

#ifndef NDEBUG
TEST(IdVector, SubscriptBoundsCheckedUnderDcheck) {
  IdVector<CellTag, int> v(2, 0);
  EXPECT_THROW(v[CellId{2}], ContractError);
  EXPECT_THROW(v[CellId::invalid()], ContractError);
}
#endif

TEST(Quantity, ArithmeticAndRatios) {
  const Meters a{300.0};
  const Meters b{200.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 500.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 100.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 600.0);
  EXPECT_DOUBLE_EQ((0.5 * a).value(), 150.0);
  EXPECT_DOUBLE_EQ((a / 3.0).value(), 100.0);
  EXPECT_DOUBLE_EQ(a / b, 1.5);  // dimensionless ratio
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ((-b).value(), -200.0);
}

TEST(Quantity, DbmConvertsThroughMilliwatts) {
  const Dbm p{30.0};
  EXPECT_NEAR(to_milliwatts(p), 1000.0, 1e-9);
  EXPECT_NEAR(dbm_from_milliwatts(1000.0).value(), 30.0, 1e-12);
}

}  // namespace
}  // namespace uavcov
