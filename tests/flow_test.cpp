// Tests for src/flow: Dinic max flow, checkpoint/rollback journaling,
// randomized cross-checks against the exhaustive assignment oracle.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "flow/dinic.hpp"
#include "flow/incremental.hpp"
#include "flow/oracles.hpp"

namespace uavcov {
namespace {

TEST(Dinic, SingleEdge) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  const auto e = f.add_edge(s, t, 5);
  EXPECT_EQ(f.augment(s, t), 5);
  EXPECT_EQ(f.edge_flow(e), 5);
}

TEST(Dinic, BottleneckPath) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto a = f.add_node();
  const auto t = f.add_node();
  f.add_edge(s, a, 10);
  f.add_edge(a, t, 3);
  EXPECT_EQ(f.augment(s, t), 3);
}

TEST(Dinic, ClassicDiamond) {
  // s→a:4 s→b:2 a→b:1 a→t:2 b→t:3  → max flow 5.
  DinicFlow f;
  const auto s = f.add_node();
  const auto a = f.add_node();
  const auto b = f.add_node();
  const auto t = f.add_node();
  f.add_edge(s, a, 4);
  f.add_edge(s, b, 2);
  f.add_edge(a, b, 1);
  f.add_edge(a, t, 2);
  f.add_edge(b, t, 3);
  EXPECT_EQ(f.augment(s, t), 5);
}

TEST(Dinic, NoPathMeansZero) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  EXPECT_EQ(f.augment(s, t), 0);
}

TEST(Dinic, SecondAugmentAddsNothing) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  f.add_edge(s, t, 7);
  EXPECT_EQ(f.augment(s, t), 7);
  EXPECT_EQ(f.augment(s, t), 0);
}

TEST(Dinic, IncrementalAugmentAfterNewEdges) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  const auto a = f.add_node();
  f.add_edge(s, a, 4);
  EXPECT_EQ(f.augment(s, t), 0);
  f.add_edge(a, t, 3);
  EXPECT_EQ(f.augment(s, t), 3);  // incremental, not from scratch
}

TEST(Dinic, ContractViolations) {
  DinicFlow f;
  const auto s = f.add_node();
  EXPECT_THROW(f.add_edge(s, 5, 1), ContractError);
  EXPECT_THROW(f.add_edge(s, s, -1), ContractError);
  EXPECT_THROW(f.augment(s, s), ContractError);
}

TEST(DinicCheckpoint, RollbackRestoresFlowAndTopology) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  const auto a = f.add_node();
  f.add_edge(s, a, 2);
  const auto e_at = f.add_edge(a, t, 1);
  EXPECT_EQ(f.augment(s, t), 1);

  const auto cp = f.checkpoint();
  const auto b = f.add_node();
  f.add_edge(s, b, 5);
  f.add_edge(b, t, 5);
  EXPECT_EQ(f.augment(s, t), 5);
  f.rollback(cp);

  EXPECT_EQ(f.node_count(), 3);
  EXPECT_EQ(f.edge_flow(e_at), 1);
  // After rollback the network behaves exactly like before the probe.
  EXPECT_EQ(f.augment(s, t), 0);
  (void)b;
}

TEST(DinicCheckpoint, RollbackUndoesReroutedFlow) {
  // The probe's augmentation reroutes existing flow through residual
  // edges; rollback must restore the original routing exactly.
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  const auto a = f.add_node();
  const auto b = f.add_node();
  const auto e_sa = f.add_edge(s, a, 1);
  f.add_edge(a, b, 1);
  const auto e_bt = f.add_edge(b, t, 1);
  EXPECT_EQ(f.augment(s, t), 1);

  const auto cp = f.checkpoint();
  // New path s→b and a→t lets flow 2 total (rerouting a→b usage).
  f.add_edge(s, b, 1);
  f.add_edge(a, t, 1);
  EXPECT_EQ(f.augment(s, t), 1);
  f.rollback(cp);
  EXPECT_EQ(f.edge_flow(e_sa), 1);
  EXPECT_EQ(f.edge_flow(e_bt), 1);
  EXPECT_EQ(f.augment(s, t), 0);
}

TEST(DinicCheckpoint, NestedScopesUnwindInOrder) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  f.add_edge(s, t, 1);
  EXPECT_EQ(f.augment(s, t), 1);

  const auto outer = f.checkpoint();
  f.add_edge(s, t, 2);
  EXPECT_EQ(f.augment(s, t), 2);
  const auto inner = f.checkpoint();
  f.add_edge(s, t, 4);
  EXPECT_EQ(f.augment(s, t), 4);
  f.rollback(inner);
  EXPECT_EQ(f.augment(s, t), 0);  // back to flow 3 state
  f.rollback(outer);
  EXPECT_EQ(f.augment(s, t), 0);  // back to flow 1 state
  EXPECT_EQ(f.edge_count(), 2);
}

TEST(DinicCheckpoint, CommitKeepsChangesUnderOuterRollback) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  f.add_edge(s, t, 1);
  EXPECT_EQ(f.augment(s, t), 1);

  const auto outer = f.checkpoint();
  const auto inner = f.checkpoint();
  f.add_edge(s, t, 2);
  EXPECT_EQ(f.augment(s, t), 2);
  f.commit(inner);                 // keep the inner changes...
  f.rollback(outer);               // ...but outer rollback wipes them too
  EXPECT_EQ(f.edge_count(), 2);
  EXPECT_EQ(f.augment(s, t), 0);
}

TEST(DinicCheckpoint, RollbackWithoutCheckpointThrows) {
  DinicFlow f;
  DinicFlow::Checkpoint cp{};
  EXPECT_THROW(f.rollback(cp), ContractError);
}

TEST(FlowProbe, RaiiRollsBackAutomatically) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  f.add_edge(s, t, 1);
  f.augment(s, t);
  {
    FlowProbe probe(f);
    f.add_edge(s, t, 9);
    EXPECT_EQ(f.augment(s, t), 9);
  }
  EXPECT_EQ(f.edge_count(), 2);
  EXPECT_EQ(f.augment(s, t), 0);
}

TEST(FlowProbe, CommitKeeps) {
  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  {
    FlowProbe probe(f);
    f.add_edge(s, t, 9);
    f.augment(s, t);
    probe.commit();
  }
  EXPECT_EQ(f.edge_count(), 2);
}

TEST(FlowProbe, DoubleCloseThrows) {
  DinicFlow f;
  FlowProbe probe(f);
  probe.rollback();
  EXPECT_THROW(probe.commit(), ContractError);
}

// Randomized: bipartite assignment instances solved by Dinic must match
// the exhaustive oracle, including after probe/rollback cycles.
class FlowAssignmentRandom : public testing::TestWithParam<int> {};

TEST_P(FlowAssignmentRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1001 + 13);
  const int items = 1 + static_cast<int>(rng.next_below(9));
  const int bins = 1 + static_cast<int>(rng.next_below(4));
  std::vector<std::vector<std::int32_t>> eligible(
      static_cast<std::size_t>(items));
  std::vector<std::int64_t> capacity(static_cast<std::size_t>(bins));
  for (auto& c : capacity) c = 1 + static_cast<std::int64_t>(rng.next_below(3));
  for (auto& e : eligible) {
    for (int b = 0; b < bins; ++b) {
      if (rng.chance(0.5)) e.push_back(b);
    }
  }
  const std::int64_t expected = oracle::brute_force_assignment(eligible, capacity);

  DinicFlow f;
  const auto s = f.add_node();
  const auto t = f.add_node();
  std::vector<DinicFlow::FlowNode> item_node, bin_node;
  for (int i = 0; i < items; ++i) {
    item_node.push_back(f.add_node());
    f.add_edge(s, item_node.back(), 1);
  }
  for (int b = 0; b < bins; ++b) {
    bin_node.push_back(f.add_node());
    f.add_edge(bin_node.back(), t, capacity[static_cast<std::size_t>(b)]);
  }
  for (int i = 0; i < items; ++i) {
    for (std::int32_t b : eligible[static_cast<std::size_t>(i)]) {
      f.add_edge(item_node[static_cast<std::size_t>(i)],
                 bin_node[static_cast<std::size_t>(b)], 1);
    }
  }
  EXPECT_EQ(f.augment(s, t), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowAssignmentRandom, testing::Range(0, 25));

// Probe/rollback fuzz: interleave committed growth with rolled-back probes
// and verify the final flow equals a from-scratch computation.
class FlowProbeFuzz : public testing::TestWithParam<int> {};

TEST_P(FlowProbeFuzz, RollbackNeverLeaks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  DinicFlow live;
  const auto s = live.add_node();
  const auto t = live.add_node();
  std::vector<std::tuple<int, int, int>> committed_edges;  // (u, v, cap)
  std::vector<DinicFlow::FlowNode> nodes{s, t};
  std::int64_t live_flow = 0;

  for (int step = 0; step < 30; ++step) {
    const bool probe_only = rng.chance(0.5);
    const auto cp = probe_only ? live.checkpoint() : DinicFlow::Checkpoint{};
    // Add a random node with random edges from s-side and to t-side.
    const auto nu = live.add_node();
    const int cap_in = 1 + static_cast<int>(rng.next_below(3));
    const int cap_out = 1 + static_cast<int>(rng.next_below(3));
    live.add_edge(s, nu, cap_in);
    live.add_edge(nu, t, cap_out);
    const auto gain = live.augment(s, t);
    if (probe_only) {
      live.rollback(cp);
    } else {
      nodes.push_back(nu);
      committed_edges.emplace_back(0, static_cast<int>(nodes.size()) - 1,
                                   cap_in);
      committed_edges.emplace_back(static_cast<int>(nodes.size()) - 1, 1,
                                   cap_out);
      live_flow += gain;
    }
  }

  // Reference: rebuild only the committed structure from scratch.
  DinicFlow fresh;
  std::vector<DinicFlow::FlowNode> fresh_nodes;
  fresh_nodes.push_back(fresh.add_node());
  fresh_nodes.push_back(fresh.add_node());
  for (std::size_t i = 2; i < nodes.size(); ++i) {
    fresh_nodes.push_back(fresh.add_node());
  }
  for (auto [u, v, cap] : committed_edges) {
    fresh.add_edge(fresh_nodes[static_cast<std::size_t>(u)],
                   fresh_nodes[static_cast<std::size_t>(v)], cap);
  }
  EXPECT_EQ(live_flow, fresh.augment(fresh_nodes[0], fresh_nodes[1]));
  EXPECT_EQ(live.augment(s, t), 0);  // live network is already maximal
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProbeFuzz, testing::Range(0, 15));

}  // namespace
}  // namespace uavcov
