// Tests for src/common: contracts, RNG, table/CSV formatting, CLI parsing,
// units, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace uavcov {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(UAVCOV_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsContractError) {
  EXPECT_THROW(UAVCOV_CHECK(false), ContractError);
}

TEST(Check, MessageIsIncluded) {
  try {
    UAVCOV_CHECK_MSG(false, "distinctive-message");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("distinctive-message"),
              std::string::npos);
  }
}

TEST(Check, ExpressionTextIsIncluded) {
  try {
    UAVCOV_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng a(99);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(99);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), ContractError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractError);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ParetoAboveMinimum) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  // With alpha = 1.2, the max of 5000 draws should dwarf the median.
  Rng rng(19);
  std::vector<double> draws;
  for (int i = 0; i < 5000; ++i) draws.push_back(rng.pareto(1.2, 1.0));
  std::sort(draws.begin(), draws.end());
  EXPECT_GT(draws.back(), 20.0 * draws[draws.size() / 2]);
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), ContractError);
  EXPECT_THROW(rng.pareto(1.0, 0.0), ContractError);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng b(31);
  b.next_u64();  // parent consumed one value for the fork
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.next_u64() == b.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Units, DbRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, KnownConversions) {
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(db_to_linear(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(1000.0), 30.0, 1e-9);
}

TEST(Units, DegreesRadians) {
  EXPECT_NEAR(deg_to_rad(180.0), 3.14159265358979, 1e-9);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-9);
}

TEST(Stopwatch, ElapsedIsNonnegativeAndMonotone) {
  Stopwatch w;
  const double a = w.elapsed_s();
  const double b = w.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch w;
  (void)w.elapsed_s();
  w.restart();
  EXPECT_LT(w.elapsed_s(), 1.0);
}

TEST(Table, AlignsColumns) {
  Table t;
  t.set_header({"K", "served"});
  t.add_row({"2", "301"});
  t.add_row({"20", "2356"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("K   served"), std::string::npos);
  EXPECT_NE(out.find("20  2356"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, AddRowOfFormatsMixedTypes) {
  Table t;
  t.set_header({"name", "count", "ratio"});
  t.add_row_of("x", 42, 0.5);
  EXPECT_NE(t.to_string().find("0.50"), std::string::npos);
}

TEST(Table, EmptyTablePrintsNothingButHeader) {
  Table t;
  t.set_header({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.to_string(), "h\n");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.23456, 4), "1.2346");
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "/uavcov_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c"});
    csv.write_row_of(1, 2.5, "x");
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\"");
  EXPECT_EQ(line2.substr(0, 2), "1,");
}

TEST(Csv, ParseRowInvertsQuote) {
  EXPECT_EQ(parse_csv_row(""), std::vector<std::string>{""});
  EXPECT_EQ(parse_csv_row("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_row("a,\"b,c\""), (std::vector<std::string>{"a", "b,c"}));
  EXPECT_EQ(parse_csv_row("\"say \"\"hi\"\"\""),
            std::vector<std::string>{"say \"hi\""});
  // Trailing comma means a final empty cell, not silent truncation.
  EXPECT_EQ(parse_csv_row("a,"), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(parse_csv_row(",,"), (std::vector<std::string>{"", "", ""}));
  // quote -> parse round trip over cells CsvWriter would actually emit
  const std::vector<std::string> row = {"plain", "a,b", "say \"hi\"", ""};
  std::string line;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) line += ',';
    line += CsvWriter::quote(row[i]);
  }
  EXPECT_EQ(parse_csv_row(line), row);
}

TEST(Csv, ParseRowRejectsMalformedQuoting) {
  EXPECT_THROW(parse_csv_row("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_csv_row("\"done\"extra"), std::invalid_argument);
  EXPECT_THROW(parse_csv_row("mid\"quote"), std::invalid_argument);
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), ContractError);
}

TEST(Cli, ParsesAllFlagForms) {
  CliParser cli;
  cli.add_flag("users", "number of users", "100");
  cli.add_flag("ratio", "a ratio", "0.5");
  cli.add_flag("verbose", "chatty output", "false");
  const char* argv[] = {"prog", "--users", "250", "--ratio=0.75",
                        "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("users"), 250);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.75);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli;
  cli.add_flag("n", "count", "7");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli;
  cli.add_flag("n", "count", "7");
  const char* argv[] = {"prog", "--m", "3"};
  EXPECT_THROW(cli.parse(3, argv), ContractError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli;
  cli.add_flag("n", "count", "7");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, TypeMismatchThrows) {
  CliParser cli;
  cli.add_flag("n", "count", "7");
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("n"), ContractError);
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser cli;
  cli.add_flag("n", "count", "7");
  EXPECT_THROW(cli.add_flag("n", "again", "8"), ContractError);
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);
  UAVCOV_LOG(Error) << "must not crash while disabled";
  set_log_level(LogLevel::kDebug);
  UAVCOV_LOG(Debug) << "enabled path";
  set_log_level(saved);
  SUCCEED();
}

}  // namespace
}  // namespace uavcov
