// Broad end-to-end sweep: every algorithm × several workload shapes ×
// fleet sizes, checking full §II-C feasibility plus cross-algorithm
// invariants (approAlg with refinement dominates RandomConnected; metrics
// bounds hold; serialization round-trips the winner).
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/greedy_assign.hpp"
#include "baselines/kmeans_place.hpp"
#include "baselines/max_throughput.hpp"
#include "baselines/mcs.hpp"
#include "baselines/motion_ctrl.hpp"
#include "baselines/random_connected.hpp"
#include "core/appro_alg.hpp"
#include "core/refine.hpp"
#include "eval/metrics.hpp"
#include "io/serialize.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

struct SweepCase {
  workload::UserDistribution distribution;
  std::int32_t users;
  std::int32_t uavs;
  std::uint64_t seed;
};

class EndToEndSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(EndToEndSweep, AllAlgorithmsFeasibleAndOrdered) {
  const SweepCase c = GetParam();
  Rng rng(c.seed);
  workload::ScenarioConfig config;
  config.width_m = 1800;
  config.height_m = 1800;
  config.cell_side_m = 300;
  config.user_count = c.users;
  config.distribution = c.distribution;
  config.fleet.uav_count = c.uavs;
  config.fleet.capacity_min = 5;
  config.fleet.capacity_max = 40;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  const CoverageModel cov(sc);

  ApproAlgParams params;
  params.s = 1;
  params.candidate_cap = 20;
  Solution ours = appro_alg(sc, cov, params);
  refine_solution(sc, cov, ours);

  std::vector<Solution> all;
  all.push_back(ours);
  all.push_back(baselines::solve(sc, cov, baselines::MaxThroughputParams{}));
  all.push_back(baselines::solve(sc, cov, baselines::MotionCtrlParams{}));
  all.push_back(baselines::solve(sc, cov, baselines::McsParams{}));
  all.push_back(baselines::solve(sc, cov, baselines::GreedyAssignParams{}));
  all.push_back(baselines::solve(sc, cov, baselines::KMeansParams{}));
  all.push_back(baselines::solve(sc, cov, baselines::RandomConnectedParams{}));

  for (const Solution& sol : all) {
    SCOPED_TRACE(sol.algorithm);
    // Full §II-C audit + metric sanity for every algorithm.
    ASSERT_NO_THROW(validate_solution(sc, cov, sol));
    const auto metrics = eval::compute_metrics(sc, cov, sol);
    EXPECT_EQ(metrics.served, sol.served);
    EXPECT_GE(metrics.coverage_fraction, 0.0);
    EXPECT_LE(metrics.coverage_fraction, 1.0 + 1e-12);
    EXPECT_LE(metrics.capacity_utilization, 1.0 + 1e-12);
    EXPECT_LE(sol.served, sc.total_capacity());
    EXPECT_LE(sol.served, sc.user_count());
  }

  // The refined paper algorithm must beat the random sanity baseline.
  EXPECT_GE(ours.served, all.back().served);

  // Winner survives a serialization round trip bit-exactly.
  std::stringstream buffer;
  io::save_solution(buffer, ours);
  const Solution loaded = io::load_solution(buffer, sc.user_count());
  EXPECT_EQ(loaded.served, ours.served);
  EXPECT_EQ(loaded.deployments, ours.deployments);
  EXPECT_NO_THROW(validate_solution(sc, cov, loaded));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndSweep,
    testing::Values(
        SweepCase{workload::UserDistribution::kFatTailed, 120, 4, 1},
        SweepCase{workload::UserDistribution::kFatTailed, 200, 8, 2},
        SweepCase{workload::UserDistribution::kFatTailed, 300, 12, 3},
        SweepCase{workload::UserDistribution::kUniform, 120, 4, 4},
        SweepCase{workload::UserDistribution::kUniform, 200, 8, 5},
        SweepCase{workload::UserDistribution::kUniform, 300, 12, 6}),
    [](const auto& info) {
      const SweepCase& c = info.param;
      return std::string(c.distribution ==
                                 workload::UserDistribution::kFatTailed
                             ? "fat"
                             : "uniform") +
             "_n" + std::to_string(c.users) + "_K" + std::to_string(c.uavs);
    });

}  // namespace
}  // namespace uavcov
