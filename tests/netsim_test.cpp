// Tests for the downlink service simulator (netsim): conservation,
// saturation behavior (§I motivation), determinism, config contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "netsim/service_sim.hpp"
#include "obs/metrics.hpp"

namespace uavcov {
namespace {

/// One UAV at the single cell of a 1-cell grid, `n` users in range.
std::pair<Scenario, Solution> single_uav_instance(std::int32_t n) {
  Scenario sc{
      .grid = Grid(1000, 1000, 1000),
      .altitude_m = 300.0,
      .uav_range_m = 600.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{std::max(n, 1), Radio{}, 500.0}},
  };
  for (std::int32_t i = 0; i < n; ++i) {
    // Ring placement inside the radius.
    const double phi = 6.283185307 * i / std::max(n, 1);
    sc.users.push_back(
        {{500.0 + 200.0 * std::cos(phi), 500.0 + 200.0 * std::sin(phi)},
         2e3});
  }
  Solution sol;
  sol.algorithm = "static";
  sol.deployments = {{UavId{0}, LocationId{0}}};
  sol.user_to_deployment.assign(static_cast<std::size_t>(n), 0);
  sol.served = n;
  return {std::move(sc), std::move(sol)};
}

TEST(ServiceSim, TickMetricsCountEverySlot) {
  obs::Registry& reg = obs::Registry::instance();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();

  auto [sc, sol] = single_uav_instance(5);
  netsim::ServiceSimConfig config;
  config.duration_s = 0.25;  // 250 slots at the 1 ms TTI
  const auto result = netsim::simulate_service(sc, sol, config);
  ASSERT_EQ(result.users.size(), 5u);

  const obs::Snapshot snap = reg.snapshot();
  reg.set_enabled(was_enabled);
  const auto slots = static_cast<std::int64_t>(
      std::ceil(config.duration_s / config.slot_s));
  EXPECT_EQ(snap.counter_value("netsim.runs"), 1);
  EXPECT_EQ(snap.counter_value("netsim.ticks"), slots);
  const obs::SnapshotEntry* ticks = snap.find("netsim.tick_seconds");
  ASSERT_NE(ticks, nullptr);
  // One latency sample per slot, all non-negative.
  EXPECT_EQ(ticks->hist.count, slots);
  EXPECT_GE(ticks->hist.min, 0);
}

TEST(SustainableUsers, MatchesPaperExample) {
  // Defaults: 100 pkt/s server, 2 kb/s users, 4096-bit packets → ~204,
  // the same order as the paper's "e.g., 200 users".
  const netsim::ServiceSimConfig config;
  EXPECT_EQ(netsim::sustainable_users(config), 204);
}

TEST(SustainableUsers, ScalesWithServerBudget) {
  netsim::ServiceSimConfig config;
  config.server_pkts_per_s = 50.0;
  const auto half = netsim::sustainable_users(config);
  config.server_pkts_per_s = 100.0;
  EXPECT_EQ(netsim::sustainable_users(config), 2 * half);
}

TEST(ServiceSim, LightLoadDeliversOfferedTraffic) {
  auto [sc, sol] = single_uav_instance(20);
  netsim::ServiceSimConfig config;
  config.duration_s = 5.0;
  const auto result = netsim::simulate_service(sc, sol, config);
  ASSERT_EQ(result.users.size(), 20u);
  for (const auto& u : result.users) {
    // Throughput within 25% of offered (quantization at short horizons).
    EXPECT_GT(u.mean_throughput_bps, 0.75 * config.offered_load_bps);
    EXPECT_EQ(u.packets_dropped, 0);
    EXPECT_LT(u.mean_delay_s, 0.5);  // far below saturation
  }
  EXPECT_GT(result.network_throughput_bps,
            0.75 * 20 * config.offered_load_bps);
}

TEST(ServiceSim, OverloadExplodesDelay) {
  // The §I claim: past the server's sustainable point, delays grow to
  // seconds and throughput saturates.
  const netsim::ServiceSimConfig config;
  const std::int32_t knee = netsim::sustainable_users(config);
  auto [light_sc, light_sol] = single_uav_instance(knee / 4);
  auto [heavy_sc, heavy_sol] = single_uav_instance(2 * knee);
  const auto light = netsim::simulate_service(light_sc, light_sol, config);
  const auto heavy = netsim::simulate_service(heavy_sc, heavy_sol, config);
  EXPECT_LT(light.mean_delay_s, 0.2);
  EXPECT_GT(heavy.mean_delay_s, 1.0);  // "a few seconds"
  // Throughput saturates: doubling users beyond the knee adds ~nothing.
  EXPECT_LT(heavy.network_throughput_bps,
            1.2 * config.server_pkts_per_s * config.packet_bits);
}

TEST(ServiceSim, ServerUtilizationSaturatesAtOne) {
  const netsim::ServiceSimConfig config;
  const std::int32_t knee = netsim::sustainable_users(config);
  auto [sc, sol] = single_uav_instance(2 * knee);
  const auto result = netsim::simulate_service(sc, sol, config);
  ASSERT_EQ(result.uavs.size(), 1u);
  EXPECT_GT(result.uavs[0].server_utilization, 0.95);
  EXPECT_LE(result.uavs[0].server_utilization, 1.0 + 1e-9);
  EXPECT_EQ(result.uavs[0].attached_users, 2 * knee);
}

TEST(ServiceSim, ConservationNoFreeBits) {
  auto [sc, sol] = single_uav_instance(30);
  netsim::ServiceSimConfig config;
  config.duration_s = 5.0;
  const auto result = netsim::simulate_service(sc, sol, config);
  for (const auto& u : result.users) {
    EXPECT_LE(u.mean_throughput_bps,
              config.offered_load_bps * 1.3)
        << "delivered more than offered";
  }
}

TEST(ServiceSim, Deterministic) {
  auto [sc, sol] = single_uav_instance(40);
  netsim::ServiceSimConfig config;
  config.duration_s = 3.0;
  const auto a = netsim::simulate_service(sc, sol, config);
  const auto b = netsim::simulate_service(sc, sol, config);
  EXPECT_EQ(a.network_throughput_bps, b.network_throughput_bps);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST(ServiceSim, UnservedUsersIgnored) {
  auto [sc, sol] = single_uav_instance(10);
  sol.user_to_deployment[UserId{0}] = -1;
  sol.served = 9;
  const auto result = netsim::simulate_service(sc, sol, {});
  EXPECT_EQ(result.users.size(), 9u);
}

TEST(ServiceSim, EmptySolution) {
  auto [sc, sol] = single_uav_instance(5);
  std::fill(sol.user_to_deployment.begin(), sol.user_to_deployment.end(),
            -1);
  sol.served = 0;
  const auto result = netsim::simulate_service(sc, sol, {});
  EXPECT_TRUE(result.users.empty());
  EXPECT_EQ(result.network_throughput_bps, 0.0);
}

TEST(ServiceSim, ConfigContracts) {
  auto [sc, sol] = single_uav_instance(3);
  netsim::ServiceSimConfig bad;
  bad.duration_s = -1;
  EXPECT_THROW(netsim::simulate_service(sc, sol, bad), ContractError);
  bad = {};
  bad.slot_s = 0;
  EXPECT_THROW(netsim::simulate_service(sc, sol, bad), ContractError);
  bad = {};
  bad.packet_bits = 0;
  EXPECT_THROW(netsim::simulate_service(sc, sol, bad), ContractError);
  bad = {};
  bad.server_pkts_per_s = -1;
  EXPECT_THROW(netsim::simulate_service(sc, sol, bad), ContractError);
}

// Edge cases the fault-drill timeline hits (docs/RESILIENCE.md): empty
// observation windows and UAVs with nobody attached must produce zeroed
// statistics, never a division by zero.
TEST(ServiceSim, ZeroDurationWindowYieldsZeroedStats) {
  auto [sc, sol] = single_uav_instance(3);
  netsim::ServiceSimConfig config;
  config.duration_s = 0;  // coincident fault events => zero-length phase
  const netsim::ServiceSimResult r = netsim::simulate_service(sc, sol, config);
  ASSERT_EQ(r.users.size(), 3u);
  ASSERT_EQ(r.uavs.size(), 1u);
  for (const auto& u : r.users) {
    EXPECT_TRUE(std::isfinite(u.mean_throughput_bps));
    EXPECT_EQ(u.mean_throughput_bps, 0.0);
    EXPECT_EQ(u.packets_delivered, 0);
  }
  EXPECT_TRUE(std::isfinite(r.uavs[0].airtime_utilization));
  EXPECT_EQ(r.uavs[0].airtime_utilization, 0.0);
  EXPECT_TRUE(std::isfinite(r.uavs[0].server_utilization));
  EXPECT_EQ(r.uavs[0].server_utilization, 0.0);
  EXPECT_TRUE(std::isfinite(r.network_throughput_bps));
  EXPECT_EQ(r.network_throughput_bps, 0.0);
  EXPECT_EQ(r.mean_delay_s, 0.0);
  EXPECT_EQ(r.p95_delay_s, 0.0);
}

TEST(ServiceSim, UavWithZeroAttachedUsersHasFiniteStats) {
  // Two deployed UAVs, every user on the first: the idle UAV must report
  // zero utilization and delay, not NaN.
  auto [sc, sol] = single_uav_instance(4);
  sc.grid = Grid(2000, 1000, 1000);
  sc.uav_range_m = 1200.0;
  sc.fleet.push_back({4, Radio{}, 500.0});
  sol.deployments.push_back({UavId{1}, LocationId{1}});
  const netsim::ServiceSimResult r = netsim::simulate_service(sc, sol, {});
  ASSERT_EQ(r.uavs.size(), 2u);
  EXPECT_EQ(r.uavs[1].attached_users, 0);
  EXPECT_TRUE(std::isfinite(r.uavs[1].airtime_utilization));
  EXPECT_EQ(r.uavs[1].airtime_utilization, 0.0);
  EXPECT_TRUE(std::isfinite(r.uavs[1].mean_delay_s));
  EXPECT_EQ(r.uavs[1].mean_delay_s, 0.0);
}

TEST(ServiceSim, UavRemovedMidSimulationKeepsStatsFinite) {
  // A UAV lost mid-mission shows up as two back-to-back windows: before
  // (both UAVs) and after (survivor only, orphaned users unserved).  Both
  // windows — including a degenerate zero-length "after" — must produce
  // finite stats for every user and UAV.
  auto [sc, sol] = single_uav_instance(4);
  sc.grid = Grid(2000, 1000, 1000);
  sc.uav_range_m = 1200.0;
  sc.fleet.push_back({4, Radio{}, 500.0});
  sol.deployments.push_back({UavId{1}, LocationId{1}});
  netsim::ServiceSimConfig config;
  config.duration_s = 1.0;
  const netsim::ServiceSimResult before =
      netsim::simulate_service(sc, sol, config);
  EXPECT_EQ(before.uavs.size(), 2u);

  Solution after = sol;
  after.deployments.pop_back();  // UAV 1 removed; nobody was attached
  for (double window : {1.0, 0.0}) {
    config.duration_s = window;
    const netsim::ServiceSimResult r =
        netsim::simulate_service(sc, after, config);
    ASSERT_EQ(r.uavs.size(), 1u);
    for (const auto& u : r.users) {
      EXPECT_TRUE(std::isfinite(u.mean_throughput_bps));
      EXPECT_TRUE(std::isfinite(u.mean_delay_s));
    }
    EXPECT_TRUE(std::isfinite(r.uavs[0].airtime_utilization));
    EXPECT_TRUE(std::isfinite(r.uavs[0].server_utilization));
    EXPECT_TRUE(std::isfinite(r.network_throughput_bps));
  }
}

TEST(ServiceSim, MultiUavLoadsAreIndependent) {
  // Two UAVs on separate cells; overloading one must not hurt the other.
  Scenario sc{
      .grid = Grid(2000, 1000, 1000),
      .altitude_m = 300.0,
      .uav_range_m = 1200.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{500, Radio{}, 600.0}, {500, Radio{}, 600.0}},
  };
  const netsim::ServiceSimConfig config;
  const std::int32_t knee = netsim::sustainable_users(config);
  // 10 users on UAV 0, 2×knee on UAV 1.
  Solution sol;
  sol.algorithm = "static";
  sol.deployments = {{UavId{0}, LocationId{0}}, {UavId{1}, LocationId{1}}};
  for (int i = 0; i < 10; ++i) {
    sc.users.push_back({{500.0, 400.0 + 10.0 * i}, 2e3});
    sol.user_to_deployment.push_back(0);
  }
  for (int i = 0; i < 2 * knee; ++i) {
    sc.users.push_back({{1500.0 + (i % 20), 400.0 + i / 20}, 2e3});
    sol.user_to_deployment.push_back(1);
  }
  sol.served = static_cast<std::int64_t>(sol.user_to_deployment.size());
  const auto result = netsim::simulate_service(sc, sol, config);
  ASSERT_EQ(result.uavs.size(), 2u);
  EXPECT_LT(result.uavs[0].mean_delay_s, 0.2);
  EXPECT_GT(result.uavs[1].mean_delay_s, 1.0);
}

}  // namespace
}  // namespace uavcov
