// Tests for the four reimplemented comparison baselines + RandomConnected:
// every solution must satisfy all §II-C constraints on randomized
// instances, behave deterministically, and clear basic sanity bars.
#include <gtest/gtest.h>

#include "baselines/greedy_assign.hpp"
#include "baselines/max_throughput.hpp"
#include "baselines/mcs.hpp"
#include "baselines/motion_ctrl.hpp"
#include "baselines/random_connected.hpp"
#include "common/rng.hpp"

namespace uavcov {
namespace {

Scenario random_scenario(Rng& rng, std::int32_t cells, std::int32_t users,
                         std::int32_t uavs) {
  Scenario sc{
      .grid = Grid(cells * 100.0, cells * 100.0, 100.0),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t i = 0; i < users; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, cells * 100.0), rng.uniform(0, cells * 100.0)},
         1e3});
  }
  for (std::int32_t k = 0; k < uavs; ++k) {
    sc.fleet.push_back(
        {1 + static_cast<std::int32_t>(rng.next_below(4)), Radio{}, 120.0});
  }
  return sc;
}

using BaselineFn = Solution (*)(const Scenario&, const CoverageModel&);

Solution run_mcs(const Scenario& sc, const CoverageModel& cov) {
  return baselines::solve(sc, cov, baselines::McsParams{});
}
Solution run_motion(const Scenario& sc, const CoverageModel& cov) {
  return baselines::solve(sc, cov, baselines::MotionCtrlParams{});
}
Solution run_greedy(const Scenario& sc, const CoverageModel& cov) {
  return baselines::solve(sc, cov, baselines::GreedyAssignParams{});
}
Solution run_maxtp(const Scenario& sc, const CoverageModel& cov) {
  return baselines::solve(sc, cov, baselines::MaxThroughputParams{});
}
Solution run_random(const Scenario& sc, const CoverageModel& cov) {
  return baselines::solve(sc, cov, baselines::RandomConnectedParams{});
}

struct BaselineCase {
  const char* name;
  BaselineFn fn;
};

class BaselineFeasibility
    : public testing::TestWithParam<std::tuple<BaselineCase, int>> {};

TEST_P(BaselineFeasibility, SolutionsAlwaysValid) {
  const auto [baseline, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 23 + 7);
  const std::int32_t cells = 4 + static_cast<std::int32_t>(rng.next_below(3));
  const std::int32_t users = 5 + static_cast<std::int32_t>(rng.next_below(40));
  const std::int32_t uavs = 2 + static_cast<std::int32_t>(rng.next_below(7));
  const Scenario sc = random_scenario(rng, cells, users, uavs);
  const CoverageModel cov(sc);
  const Solution sol = baseline.fn(sc, cov);
  EXPECT_NO_THROW(validate_solution(sc, cov, sol)) << baseline.name;
  EXPECT_EQ(sol.algorithm, baseline.name);
  EXPECT_GE(sol.served, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineFeasibility,
    testing::Combine(
        testing::Values(BaselineCase{"MCS", run_mcs},
                        BaselineCase{"MotionCtrl", run_motion},
                        BaselineCase{"GreedyAssign", run_greedy},
                        BaselineCase{"maxThroughput", run_maxtp},
                        BaselineCase{"RandomConnected", run_random}),
        testing::Range(0, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class BaselineDeterminism : public testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineDeterminism, SameInputSameOutput) {
  const BaselineCase baseline = GetParam();
  Rng rng(606);
  const Scenario sc = random_scenario(rng, 5, 30, 5);
  const CoverageModel cov(sc);
  const Solution a = baseline.fn(sc, cov);
  const Solution b = baseline.fn(sc, cov);
  EXPECT_EQ(a.served, b.served) << baseline.name;
  EXPECT_EQ(a.deployments, b.deployments) << baseline.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineDeterminism,
    testing::Values(BaselineCase{"MCS", run_mcs},
                    BaselineCase{"MotionCtrl", run_motion},
                    BaselineCase{"GreedyAssign", run_greedy},
                    BaselineCase{"maxThroughput", run_maxtp},
                    BaselineCase{"RandomConnected", run_random}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Baselines, ObviousClusterIsFound) {
  // All users in one tight pile; every baseline should serve many of them.
  Scenario sc{
      .grid = Grid(500, 500, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{3, Radio{}, 120.0}, {3, Radio{}, 120.0},
                {3, Radio{}, 120.0}},
  };
  Rng rng(9);
  for (int i = 0; i < 9; ++i) {
    sc.users.push_back(
        {{240 + rng.uniform(-30, 30), 240 + rng.uniform(-30, 30)}, 1e3});
  }
  const CoverageModel cov(sc);
  for (const auto& [name, fn] :
       {std::pair<const char*, BaselineFn>{"MCS", run_mcs},
        {"MotionCtrl", run_motion},
        {"GreedyAssign", run_greedy},
        {"maxThroughput", run_maxtp}}) {
    const Solution sol = fn(sc, cov);
    EXPECT_GE(sol.served, 6) << name;  // 9 users / capacity 9 available
  }
}

TEST(Baselines, GreedyServedEstimateNeverExceedsOptimal) {
  Rng rng(515);
  for (int trial = 0; trial < 10; ++trial) {
    const Scenario sc = random_scenario(rng, 5, 25, 4);
    const CoverageModel cov(sc);
    std::vector<Deployment> deps;
    std::vector<LocationId> cells;
    for (const LocationId v : sc.grid.cells()) cells.push_back(v);
    rng.shuffle(cells);
    for (const UavId k : sc.uav_ids()) {
      deps.push_back({k, cells[k.index()]});
    }
    const auto estimate = baselines::greedy_served_estimate(sc, cov, deps);
    const auto optimal = solve_assignment(sc, cov, deps).served;
    EXPECT_LE(estimate, optimal);
    EXPECT_GE(estimate, 0);
  }
}

TEST(Baselines, CoverageCounterTracksMarginals) {
  Rng rng(31);
  const Scenario sc = random_scenario(rng, 4, 20, 2);
  const CoverageModel cov(sc);
  baselines::CoverageCounter counter(sc, cov);
  const LocationId v{5};
  const auto first = counter.marginal(v, 0);
  EXPECT_EQ(first,
            static_cast<std::int64_t>(cov.eligible_users(v, 0).size()));
  counter.add(v, 0);
  EXPECT_EQ(counter.marginal(v, 0), 0);
  counter.reset();
  EXPECT_EQ(counter.marginal(v, 0), first);
}

TEST(Baselines, RandomConnectedSeedChangesResultDeterministically) {
  Rng rng(111);
  const Scenario sc = random_scenario(rng, 5, 30, 5);
  const CoverageModel cov(sc);
  baselines::RandomConnectedParams p1;
  p1.seed = 1;
  baselines::RandomConnectedParams p2;
  p2.seed = 1;
  EXPECT_EQ(baselines::solve(sc, cov, p1).served,
            baselines::solve(sc, cov, p2).served);
}

}  // namespace
}  // namespace uavcov
