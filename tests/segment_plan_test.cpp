// Tests for Algorithm 1 (segment planning): Eq. (1) quotas, Eq. (2) relay
// bound, balanced-profile optimality vs brute force, and Theorem 1's ratio.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/segment_plan.hpp"

namespace uavcov {
namespace {

TEST(RelayUpperBound, SeedOnly) {
  // L = s, all budgets zero → g = s (just the seeds).
  EXPECT_EQ(relay_upper_bound(3, {0, 0, 0, 0}), 3);
  EXPECT_EQ(relay_upper_bound(1, {0, 0}), 1);
}

TEST(RelayUpperBound, PaperFigure2dValue) {
  // s = 3, p = (1, 2, 2, 2):
  // g = 3 + (2+2) + 1·2/2 + [(4+4+0)/4 + (4+4+0)/4] + 2·3/2 = 3+4+1+4+3 = 15.
  EXPECT_EQ(relay_upper_bound(3, {1, 2, 2, 2}), 15);
}

TEST(RelayUpperBound, EndSegmentsAreQuadratic) {
  // s = 1: g = 1 + p1(p1+1)/2 + p2(p2+1)/2.
  EXPECT_EQ(relay_upper_bound(1, {3, 2}), 1 + 6 + 3);
  EXPECT_EQ(relay_upper_bound(1, {0, 5}), 1 + 15);
}

TEST(RelayUpperBound, MiddleSegmentParity) {
  // (p² + 2p + (p mod 2)) / 4 for p = 1..4 → 1, 2, 4, 6.
  EXPECT_EQ(relay_upper_bound(2, {0, 1, 0}), 2 + 1 + 1);
  EXPECT_EQ(relay_upper_bound(2, {0, 2, 0}), 2 + 2 + 2);
  EXPECT_EQ(relay_upper_bound(2, {0, 3, 0}), 2 + 3 + 4);
  EXPECT_EQ(relay_upper_bound(2, {0, 4, 0}), 2 + 4 + 6);
}

TEST(RelayUpperBound, RejectsBadShapes) {
  EXPECT_THROW(relay_upper_bound(2, {0, 0}), ContractError);      // wrong size
  EXPECT_THROW(relay_upper_bound(2, {0, -1, 0}), ContractError);  // negative
  EXPECT_THROW(relay_upper_bound(0, {0}), ContractError);         // s < 1
}

TEST(HopLimit, Formula) {
  EXPECT_EQ(hop_limit(3, {1, 2, 2, 2}), 2);   // paper example
  EXPECT_EQ(hop_limit(1, {4, 2}), 4);
  EXPECT_EQ(hop_limit(2, {0, 5, 0}), 3);      // ⌈5/2⌉
  EXPECT_EQ(hop_limit(3, {0, 0, 0, 0}), 0);
}

TEST(HopQuotas, SumPrecondition) {
  EXPECT_THROW(hop_quotas(3, 11, {1, 2, 2, 2}), ContractError);
}

TEST(HopQuotas, Q1IsAllNonSeeds) {
  // Q_1 must equal L − s regardless of the split (every non-seed is ≥ 1
  // hop out in the analysis).
  for (const auto& p :
       std::vector<std::vector<std::int64_t>>{{3, 0}, {1, 2}, {0, 3}}) {
    const auto q = hop_quotas(1, 4, p);
    ASSERT_GE(q.size(), 2u);
    EXPECT_EQ(q[1], 3);
  }
}

TEST(HopQuotas, NonincreasingInH) {
  const auto q = hop_quotas(3, 14, {3, 3, 3, 2});
  for (std::size_t h = 1; h < q.size(); ++h) EXPECT_LE(q[h], q[h - 1]);
  EXPECT_EQ(q[0], 14);
}

class SegmentPlanSweep
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SegmentPlanSweep, PlanInvariants) {
  const auto [K, s] = GetParam();
  if (s > K) GTEST_SKIP();
  const SegmentPlan plan = compute_segment_plan(K, s);
  EXPECT_EQ(plan.K, K);
  EXPECT_EQ(plan.s, s);
  EXPECT_GE(plan.L_max, s);
  EXPECT_LE(plan.L_max, K);
  // Budgets sum to L_max − s and the relay bound respects K.
  std::int64_t total = 0;
  for (std::int64_t pi : plan.p) total += pi;
  EXPECT_EQ(total, plan.L_max - s);
  EXPECT_EQ(relay_upper_bound(s, plan.p), plan.relay_bound);
  EXPECT_LE(plan.relay_bound, K);
  // Quota vector shape.
  EXPECT_EQ(static_cast<std::int32_t>(plan.quotas.size()), plan.h_max + 1);
  EXPECT_EQ(plan.quotas[0], plan.L_max);
  // Maximality: L_max + 1 must be infeasible (brute force over all
  // compositions — the strongest form of the claim).
  if (plan.L_max < K && plan.L_max + 1 - s <= 24) {
    EXPECT_GT(min_relay_bound_brute_force(s, plan.L_max + 1), K);
  }
  // Balanced-profile search must match brute force at L_max.
  if (plan.L_max - s <= 24) {
    EXPECT_LE(plan.relay_bound,
              min_relay_bound_brute_force(s, plan.L_max) + 0)
        << "balanced profiles must be optimal";
    EXPECT_EQ(plan.relay_bound, min_relay_bound_brute_force(s, plan.L_max));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SegmentPlanSweep,
    testing::Combine(testing::Values(2, 3, 4, 5, 8, 10, 14, 20, 30),
                     testing::Values(1, 2, 3, 4)));

TEST(SegmentPlan, GrowsWithK) {
  std::int32_t prev = 0;
  for (std::int32_t K = 3; K <= 40; K += 4) {
    const SegmentPlan plan = compute_segment_plan(K, 3);
    EXPECT_GE(plan.L_max, prev);
    prev = plan.L_max;
  }
}

TEST(SegmentPlan, LargerSAllowsNoFewerNodesAtLargeK) {
  // More seeds split the budget into more short segments, so L_max should
  // not shrink when s grows (for K big enough to fit the seeds).
  const std::int32_t K = 30;
  std::int32_t prev = 0;
  for (std::int32_t s = 1; s <= 5; ++s) {
    const SegmentPlan plan = compute_segment_plan(K, s);
    EXPECT_GE(plan.L_max, prev) << "s = " << s;
    prev = plan.L_max;
  }
}

TEST(SegmentPlan, EdgeCases) {
  // K == s: only the seeds fit.
  const SegmentPlan tight = compute_segment_plan(3, 3);
  EXPECT_EQ(tight.L_max, 3);
  EXPECT_EQ(tight.relay_bound, 3);
  // s = 1, K = 2: one seed + one neighbor (p = (1,0) → g = 1+1 = 2).
  const SegmentPlan tiny = compute_segment_plan(2, 1);
  EXPECT_EQ(tiny.L_max, 2);
  EXPECT_THROW(compute_segment_plan(2, 3), ContractError);
  EXPECT_THROW(compute_segment_plan(5, 0), ContractError);
}

TEST(SegmentPlan, KEqualsSPlusTwoReachesFullFleet) {
  // g((1,0,...,0,1) ends) = s + 2 = K exactly — the corner the paper's
  // closed bracket misses; our half-open bracket must find it.
  for (std::int32_t s = 1; s <= 4; ++s) {
    const SegmentPlan plan = compute_segment_plan(s + 2, s);
    EXPECT_EQ(plan.L_max, s + 2) << "s = " << s;
  }
}

TEST(TheoreticalRatio, MatchesHandComputedValues) {
  // K = 20, s = 3: L1 = floor(sqrt(240 + 36 − 25.5)) − 4 = 15 − 4 = 11;
  // Δ = ceil(38/11) = 4 → ratio 1/12.
  EXPECT_NEAR(theoretical_approximation_ratio(20, 3), 1.0 / 12.0, 1e-12);
  // K = 20, s = 1: L1 = floor(sqrt(80 + 4 − 8.5)) − 0 = 8;
  // Δ = ceil(38/8) = 5 → 1/15.
  EXPECT_NEAR(theoretical_approximation_ratio(20, 1), 1.0 / 15.0, 1e-12);
}

TEST(TheoreticalRatio, ImprovesWithS) {
  for (std::int32_t K : {10, 20, 50, 100}) {
    EXPECT_LE(theoretical_approximation_ratio(K, 1),
              theoretical_approximation_ratio(K, 3) + 1e-12)
        << "K = " << K;
  }
}

TEST(TheoreticalRatio, ShrinksWithK) {
  EXPECT_GT(theoretical_approximation_ratio(10, 3),
            theoretical_approximation_ratio(100, 3));
}

}  // namespace
}  // namespace uavcov
