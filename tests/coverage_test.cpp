// Tests for CoverageModel: eligibility geometry, radio-class grouping,
// candidate pruning — cross-checked against direct per-pair computation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "channel/radius.hpp"
#include "core/coverage.hpp"

namespace uavcov {
namespace {

Scenario base_scenario() {
  Scenario sc{
      .grid = Grid(600, 600, 200),
      .altitude_m = 100.0,
      .uav_range_m = 300.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  return sc;
}

TEST(CoverageModel, GroupsIdenticalRadiosIntoOneClass) {
  Scenario sc = base_scenario();
  sc.users.push_back({{100, 100}, 1e3});
  sc.fleet = {{50, Radio{}, 250.0}, {80, Radio{}, 250.0},
              {120, Radio{}, 250.0}};
  const CoverageModel cov(sc);
  EXPECT_EQ(cov.radio_class_count(), 1);
  for (const UavId k : IdRange<UavId>{3}) EXPECT_EQ(cov.radio_class_of(k), 0);
}

TEST(CoverageModel, DistinctRangesMakeDistinctClasses) {
  Scenario sc = base_scenario();
  sc.users.push_back({{100, 100}, 1e3});
  sc.fleet = {{50, Radio{}, 250.0}, {80, Radio{}, 150.0},
              {60, Radio{}, 250.0}};
  const CoverageModel cov(sc);
  EXPECT_EQ(cov.radio_class_count(), 2);
  EXPECT_EQ(cov.radio_class_of(UavId{0}), cov.radio_class_of(UavId{2}));
  EXPECT_NE(cov.radio_class_of(UavId{0}), cov.radio_class_of(UavId{1}));
}

TEST(CoverageModel, EligibleUsersMatchDirectComputation) {
  Rng rng(808);
  Scenario sc = base_scenario();
  for (int i = 0; i < 60; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, 600), rng.uniform(0, 600)}, 1e3});
  }
  sc.fleet = {{50, Radio{}, 250.0},
              {80, Radio{.tx_power_dbm = 33.0, .antenna_gain_dbi = 5.0},
               150.0}};
  const CoverageModel cov(sc);
  for (const LocationId v : sc.grid.cells()) {
    for (const UavId k : sc.uav_ids()) {
      const std::int32_t cls = cov.radio_class_of(k);
      const auto eligible = cov.eligible_users(v, cls);
      std::vector<UserId> expected;
      for (const UserId u : sc.user_ids()) {
        if (cov.is_eligible(sc, u, v, k)) expected.push_back(u);
      }
      EXPECT_EQ(std::vector<UserId>(eligible.begin(), eligible.end()),
                expected)
          << "v=" << v.value() << " k=" << k.value();
    }
  }
}

TEST(CoverageModel, RateRequirementShrinksTheDisc) {
  Scenario sc = base_scenario();
  // One user with a demanding rate: its eligibility radius must follow the
  // rate curve rather than R_user.  Pick a rate whose radius bites inside
  // R_user = 250 m (the exact value depends on the channel constants).
  const Radio radio{};
  double min_rate = 0.0, rate_radius = 0.0;
  for (double rate : {1e6, 2e6, 3e6, 4e6, 5e6, 6e6}) {
    const double r = max_service_radius(sc.channel, radio, sc.receiver,
                                        sc.altitude_m, rate);
    if (r > 20.0 && r < 240.0) {
      min_rate = rate;
      rate_radius = r;
      break;
    }
  }
  ASSERT_GT(min_rate, 0.0) << "no rate bound the disc; adjust constants";
  sc.users.push_back({{300, 300}, min_rate});
  sc.fleet = {{10, radio, 250.0}};
  const CoverageModel cov(sc);
  for (const LocationId v : sc.grid.cells()) {
    const bool eligible = !cov.eligible_users(v, 0).empty();
    const double d = distance(sc.grid.center(v), {300, 300});
    if (d <= rate_radius - 1.0) {
      EXPECT_TRUE(eligible) << "v=" << v.value();
    }
    if (d > rate_radius + 1.0) {
      EXPECT_FALSE(eligible) << "v=" << v.value();
    }
  }
}

TEST(CoverageModel, MaxCoverageIsMaxOverClasses) {
  Scenario sc = base_scenario();
  sc.users.push_back({{100, 100}, 1e3});
  sc.users.push_back({{260, 100}, 1e3});
  sc.fleet = {{50, Radio{}, 80.0}, {50, Radio{}, 250.0}};
  const CoverageModel cov(sc);
  // Cell (0,0) center (100,100): short class covers 1, long covers 2.
  EXPECT_EQ(cov.max_coverage(sc.grid.id_of(0, 0)), 2);
}

TEST(CoverageModel, CandidateLocationsPruneAndCap) {
  Scenario sc = base_scenario();
  // All users piled near one corner.
  for (int i = 0; i < 5; ++i) sc.users.push_back({{90.0 + i, 100}, 1e3});
  sc.fleet = {{50, Radio{}, 150.0}};
  const CoverageModel cov(sc);
  const auto all = cov.candidate_locations();
  for (LocationId v : all) EXPECT_GT(cov.max_coverage(v), 0);
  EXPECT_LT(all.size(), static_cast<std::size_t>(sc.grid.size()));
  const auto capped = cov.candidate_locations(1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(cov.max_coverage(capped[0]), 5);
}

TEST(CoverageModel, NoUsersMeansNoCandidates) {
  Scenario sc = base_scenario();
  sc.fleet = {{50, Radio{}, 250.0}};
  const CoverageModel cov(sc);
  EXPECT_TRUE(cov.candidate_locations().empty());
}

TEST(Scenario, ValidateRejectsBadInstances) {
  {
    Scenario sc = base_scenario();
    EXPECT_THROW(sc.validate(), ContractError);  // empty fleet
  }
  {
    Scenario sc = base_scenario();
    sc.fleet = {{0, Radio{}, 250.0}};  // zero capacity
    EXPECT_THROW(sc.validate(), ContractError);
  }
  {
    Scenario sc = base_scenario();
    sc.fleet = {{10, Radio{}, 400.0}};  // R_user > R_uav
    EXPECT_THROW(sc.validate(), ContractError);
  }
  {
    Scenario sc = base_scenario();
    sc.fleet = {{10, Radio{}, 250.0}};
    sc.users.push_back({{700, 100}, 1e3});  // outside area
    EXPECT_THROW(sc.validate(), ContractError);
  }
}

TEST(Scenario, CapacityOrderAndTotals) {
  Scenario sc = base_scenario();
  sc.fleet = {{100, Radio{}, 250.0}, {300, Radio{}, 250.0},
              {200, Radio{}, 250.0}, {300, Radio{}, 250.0}};
  EXPECT_EQ(sc.total_capacity(), 900);
  const auto order = sc.uavs_by_capacity_desc();
  EXPECT_EQ(order, (std::vector<UavId>{UavId{1}, UavId{3}, UavId{2},
                                       UavId{0}}));  // stable on ties
}

}  // namespace
}  // namespace uavcov
