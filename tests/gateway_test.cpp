// Tests for the gateway/backhaul extension (paper Fig. 1) and the
// KMeansPlace extra baseline.
#include <gtest/gtest.h>

#include "baselines/kmeans_place.hpp"
#include "common/rng.hpp"
#include "core/appro_alg.hpp"
#include "core/gateway.hpp"

namespace uavcov {
namespace {

/// Users clustered on the left of a 8×1 corridor; vehicle parked far right.
Scenario corridor_scenario(std::int32_t uavs) {
  Scenario sc{
      .grid = Grid(800, 100, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (int i = 0; i < 6; ++i) {
    sc.users.push_back({{40.0 + 5 * i, 50.0}, 1e3});
  }
  for (std::int32_t k = 0; k < uavs; ++k) {
    sc.fleet.push_back({3, Radio{}, 120.0});
  }
  return sc;
}

TEST(Gateway, AlreadyConnectedIsNoop) {
  const Scenario sc = corridor_scenario(3);
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 1;
  Solution sol = appro_alg(sc, cov, params);
  const auto before = sol.deployments;
  // Vehicle right under the serving cluster.
  const auto result = extend_to_gateway(sc, cov, sol, {50, 50});
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.relays_added, 0);
  EXPECT_EQ(sol.deployments, before);
  EXPECT_GE(result.gateway_deployment, 0);
}

TEST(Gateway, BuildsRelayChainToFarVehicle) {
  const Scenario sc = corridor_scenario(8);
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 1;
  Solution sol = appro_alg(sc, cov, params);
  const auto deployed_before = sol.deployments.size();
  const auto result = extend_to_gateway(sc, cov, sol, {750, 50});
  ASSERT_TRUE(result.connected);
  EXPECT_GT(result.relays_added, 0);
  EXPECT_EQ(sol.deployments.size(),
            deployed_before + static_cast<std::size_t>(result.relays_added));
  // Still a fully feasible §II-C solution.
  validate_solution(sc, cov, sol);
  // The gateway deployment really is within range of the vehicle.
  const auto& gw = sol.deployments[static_cast<std::size_t>(
      result.gateway_deployment)];
  EXPECT_LE(slant_range({750, 50}, sc.grid.center(gw.loc), sc.altitude_m),
            sc.uav_range_m);
}

TEST(Gateway, FleetTooSmallFailsGracefully) {
  const Scenario sc = corridor_scenario(2);  // not enough for a 7-hop chain
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 1;
  Solution sol = appro_alg(sc, cov, params);
  const auto before = sol;
  const auto result = extend_to_gateway(sc, cov, sol, {750, 50});
  EXPECT_FALSE(result.connected);
  EXPECT_EQ(result.relays_added, 0);
  EXPECT_EQ(sol.deployments, before.deployments);
  EXPECT_EQ(sol.served, before.served);
}

TEST(Gateway, EmptySolutionNotConnected) {
  const Scenario sc = corridor_scenario(2);
  const CoverageModel cov(sc);
  Solution empty;
  empty.user_to_deployment.assign(sc.users.size(), -1);
  const auto result = extend_to_gateway(sc, cov, empty, {400, 50});
  EXPECT_FALSE(result.connected);
}

TEST(Gateway, RelaysMayPickUpUsers) {
  // Users both at the cluster AND along the chain: the refreshed
  // assignment should serve some chain-side users via relay UAVs.
  Scenario sc = corridor_scenario(8);
  sc.users.push_back({{450, 50}, 1e3});
  sc.users.push_back({{550, 50}, 1e3});
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 1;
  Solution sol = appro_alg(sc, cov, params);
  const auto served_before = sol.served;
  const auto result = extend_to_gateway(sc, cov, sol, {750, 50});
  ASSERT_TRUE(result.connected);
  EXPECT_GE(sol.served, served_before);
  validate_solution(sc, cov, sol);
}

TEST(KMeansPlace, FeasibleAndDeterministic) {
  Rng rng(8);
  Scenario sc{
      .grid = Grid(1000, 1000, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (int i = 0; i < 60; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, 1000), rng.uniform(0, 1000)}, 1e3});
  }
  for (int k = 0; k < 6; ++k) sc.fleet.push_back({5, Radio{}, 120.0});
  const CoverageModel cov(sc);
  const Solution a = baselines::solve(sc, cov, baselines::KMeansParams{});
  const Solution b = baselines::solve(sc, cov, baselines::KMeansParams{});
  validate_solution(sc, cov, a);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.deployments, b.deployments);
  EXPECT_EQ(a.algorithm, "KMeansPlace");
  EXPECT_GT(a.served, 0);
}

TEST(KMeansPlace, SingleClusterCollapses) {
  Scenario sc{
      .grid = Grid(500, 500, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{10, Radio{}, 120.0}, {10, Radio{}, 120.0}},
  };
  for (int i = 0; i < 8; ++i) {
    sc.users.push_back({{240.0 + i, 240.0}, 1e3});
  }
  const CoverageModel cov(sc);
  const Solution sol = baselines::solve(sc, cov, baselines::KMeansParams{});
  validate_solution(sc, cov, sol);
  EXPECT_EQ(sol.served, 8);  // the pile fits one UAV's capacity? 8 <= 10 ✓
}

TEST(KMeansPlace, NoUsers) {
  Scenario sc{
      .grid = Grid(300, 300, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{5, Radio{}, 120.0}},
  };
  const CoverageModel cov(sc);
  const Solution sol = baselines::solve(sc, cov, baselines::KMeansParams{});
  validate_solution(sc, cov, sol);
  EXPECT_EQ(sol.served, 0);
}

}  // namespace
}  // namespace uavcov
