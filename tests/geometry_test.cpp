// Tests for src/geometry: vectors, the hovering grid, the spatial index.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geometry/grid.hpp"
#include "geometry/spatial_index.hpp"
#include "geometry/vec.hpp"

namespace uavcov {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, Vec2(4, 7));
  EXPECT_EQ(b - a, Vec2(2, 3));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_EQ(b / 2.0, Vec2(1.5, 2.5));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec2(0, 0), Vec2(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(distance2(Vec2(1, 1), Vec2(4, 5)), 25.0);
}

TEST(Vec3, NormAndXy) {
  const Vec3 v{1, 2, 2};
  EXPECT_DOUBLE_EQ(v.norm(), 3.0);
  EXPECT_EQ(v.xy(), Vec2(1, 2));
}

TEST(SlantRange, FoldsAltitude) {
  EXPECT_DOUBLE_EQ(slant_range({0, 0}, {3, 0}, 4.0), 5.0);
  EXPECT_DOUBLE_EQ(slant_range({1, 1}, {1, 1}, 300.0), 300.0);
}

TEST(Grid, DimensionsAndSize) {
  const Grid g(3000, 3000, 300);
  EXPECT_EQ(g.cols(), 10);
  EXPECT_EQ(g.rows(), 10);
  EXPECT_EQ(g.size(), 100);
}

TEST(Grid, NonSquareArea) {
  const Grid g(400, 200, 100);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g.size(), 8);
}

TEST(Grid, RejectsNonDivisibleExtent) {
  EXPECT_THROW(Grid(1000, 1000, 300), ContractError);
}

TEST(Grid, RejectsNonPositiveInputs) {
  EXPECT_THROW(Grid(0, 100, 10), ContractError);
  EXPECT_THROW(Grid(100, 100, 0), ContractError);
}

TEST(Grid, CenterOfCornerCells) {
  const Grid g(300, 300, 100);
  EXPECT_EQ(g.center(LocationId{0}), Vec2(50, 50));
  EXPECT_EQ(g.center(LocationId{g.size() - 1}), Vec2(250, 250));
}

TEST(Grid, RowColIdRoundTrip) {
  const Grid g(500, 300, 100);
  for (const LocationId id : g.cells()) {
    EXPECT_EQ(g.id_of(g.row_of(id), g.col_of(id)), id);
  }
}

TEST(Grid, LocateFindsContainingCell) {
  const Grid g(300, 300, 100);
  EXPECT_EQ(g.locate({10, 10}), g.id_of(0, 0));
  EXPECT_EQ(g.locate({150, 250}), g.id_of(2, 1));
}

TEST(Grid, LocateEdgesBelongToLastCell) {
  const Grid g(300, 300, 100);
  EXPECT_EQ(g.locate({300, 300}), g.id_of(2, 2));
}

TEST(Grid, LocateOutsideReturnsInvalid) {
  const Grid g(300, 300, 100);
  EXPECT_EQ(g.locate({-1, 10}), kInvalidLocation);
  EXPECT_EQ(g.locate({10, 301}), kInvalidLocation);
}

TEST(Grid, CentersWithinMatchesBruteForce) {
  const Grid g(1000, 800, 100);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 p{rng.uniform(-100, 1100), rng.uniform(-100, 900)};
    const double radius = rng.uniform(0, 400);
    auto fast = g.centers_within(p, radius);
    std::vector<LocationId> slow;
    for (const LocationId id : g.cells()) {
      if (distance(g.center(id), p) <= radius) slow.push_back(id);
    }
    std::sort(fast.begin(), fast.end());
    EXPECT_EQ(fast, slow) << "trial " << trial;
  }
}

TEST(Grid, CentersWithinZeroRadius) {
  const Grid g(300, 300, 100);
  EXPECT_TRUE(g.centers_within({10, 10}, 0).empty());
  const auto on_center = g.centers_within({50, 50}, 0);
  ASSERT_EQ(on_center.size(), 1u);
  EXPECT_EQ(on_center[0], g.id_of(0, 0));
}

TEST(Grid, AllCentersIndexedById) {
  const Grid g(400, 300, 100);
  const auto centers = g.all_centers();
  ASSERT_EQ(static_cast<std::int32_t>(centers.size()), g.size());
  for (const LocationId id : g.cells()) {
    EXPECT_EQ(centers[id.index()], g.center(id));
  }
}

class SpatialIndexRandom : public testing::TestWithParam<int> {};

TEST_P(SpatialIndexRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 1 + static_cast<int>(rng.next_below(200));
  std::vector<Vec2> points;
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-500, 500), rng.uniform(-500, 500)});
  }
  const double bucket = rng.uniform(20, 300);
  const SpatialIndex index(points, bucket);
  for (int q = 0; q < 20; ++q) {
    const Vec2 query{rng.uniform(-600, 600), rng.uniform(-600, 600)};
    const double radius = rng.uniform(0, 400);
    auto fast = index.query_radius(query, radius);
    std::sort(fast.begin(), fast.end());
    std::vector<std::int32_t> slow;
    for (int i = 0; i < n; ++i) {
      if (distance(points[static_cast<std::size_t>(i)], query) <= radius) {
        slow.push_back(i);
      }
    }
    EXPECT_EQ(fast, slow);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexRandom, testing::Range(0, 12));

TEST(SpatialIndex, EmptySetOfPoints) {
  const SpatialIndex index({}, 100);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query_radius({0, 0}, 1000).empty());
}

TEST(SpatialIndex, NegativeCoordinatesWork) {
  const SpatialIndex index({{-250, -250}, {250, 250}}, 100);
  const auto hits = index.query_radius({-250, -250}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0);
}

TEST(SpatialIndex, RejectsBadBucket) {
  EXPECT_THROW(SpatialIndex({{0, 0}}, 0), ContractError);
}

}  // namespace
}  // namespace uavcov
