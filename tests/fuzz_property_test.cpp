// Deterministic property tests over the fuzzing harness bodies (src/fuzz).
//
// Two layers:
//   * seeded random byte streams — the standalone-driver mode of the
//     fuzzers, so every differential oracle runs on GCC-only toolchains
//     with zero extra dependencies (libFuzzer adds coverage guidance on
//     top of exactly these bodies, it does not change them);
//   * corpus replay — every checked-in file under tests/fuzz/corpus/ runs
//     through its harness, which means the asan-ubsan and tsan presets
//     re-execute the corpus under sanitizers on every ctest invocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuzz/byte_reader.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/scenario_decoder.hpp"
#include "io/serialize.hpp"

namespace uavcov::fuzz {
namespace {

/// Deterministic pseudo-random byte string for one (harness, case) pair.
std::vector<std::uint8_t> seeded_bytes(std::uint64_t seed,
                                       std::size_t length) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(length);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return bytes;
}

void run_seeded(HarnessFn harness, std::uint64_t cases,
                std::uint64_t seed_salt) {
  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::size_t length = 16 + (i * 37) % 240;  // 16..255 bytes
    const std::vector<std::uint8_t> bytes =
        seeded_bytes(i * 0x9E3779B97F4A7C15ULL + seed_salt, length);
    ASSERT_NO_THROW(harness(bytes.data(), bytes.size()))
        << "case " << i << " (length " << length << ")";
  }
}

TEST(FuzzHarness, ByteReaderRangesAndExhaustion) {
  const std::uint8_t data[] = {0xFF, 0x00, 0x7E, 0x01};
  ByteReader r(data, sizeof(data));
  for (int i = 0; i < 64; ++i) {
    const std::int64_t v = r.take_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.take_int(5, 100), 5);     // exhausted -> lower bound
  EXPECT_EQ(r.take_u8(), 0);
  EXPECT_EQ(r.take_unit(), 0.0);
  ByteReader null_reader(nullptr, 0);
  EXPECT_TRUE(null_reader.exhausted());
  EXPECT_EQ(null_reader.take_rest_as_string(), "");
}

TEST(FuzzHarness, DecoderIsDeterministicAndTotal) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<std::uint8_t> bytes = seeded_bytes(seed, 128);
    ByteReader r1(bytes.data(), bytes.size());
    ByteReader r2(bytes.data(), bytes.size());
    const ScenarioLimits limits;
    const Scenario a = decode_scenario(r1, limits);
    const Scenario b = decode_scenario(r2, limits);
    std::ostringstream sa, sb;
    io::save_scenario(sa, a);
    io::save_scenario(sb, b);
    EXPECT_EQ(sa.str(), sb.str()) << "seed " << seed;
    EXPECT_NO_THROW(a.validate());
  }
  // The empty stream is a valid (minimal) scenario, not an error.
  ByteReader empty(nullptr, 0);
  const ScenarioLimits limits;
  EXPECT_NO_THROW(decode_scenario(empty, limits).validate());
}

TEST(FuzzHarness, AllHarnessesRegistered) {
  ASSERT_EQ(all_harnesses().size(), 7u);
  EXPECT_NE(find_harness("fuzz_assignment"), nullptr);
  EXPECT_NE(find_harness("fuzz_appro_alg"), nullptr);
  EXPECT_NE(find_harness("fuzz_segment_plan"), nullptr);
  EXPECT_NE(find_harness("fuzz_serialize_roundtrip"), nullptr);
  EXPECT_NE(find_harness("fuzz_repair"), nullptr);
  EXPECT_NE(find_harness("fuzz_stream"), nullptr);
  EXPECT_NE(find_harness("fuzz_service"), nullptr);
  EXPECT_EQ(find_harness("no_such_target"), nullptr);
}

// The assignment differential is the acceptance bar: >= 1000 seeded tiny
// instances where the max-flow cardinality equals the brute-force matching
// optimum and capacities/radii are respected (the harness throws
// FuzzFailure otherwise).
TEST(FuzzHarness, AssignmentDifferentialOn1000SeededInstances) {
  run_seeded(&run_assignment_harness, 1000, 0xA551);
}

TEST(FuzzHarness, ApproAlgSerialParallelAndExhaustiveProperties) {
  run_seeded(&run_appro_alg_harness, 150, 0xA7701);
}

TEST(FuzzHarness, SegmentPlanProperties) {
  run_seeded(&run_segment_plan_harness, 400, 0x5E6);
}

TEST(FuzzHarness, SerializeRoundTripProperties) {
  run_seeded(&run_serialize_roundtrip_harness, 400, 0x5E71A);
}

TEST(FuzzHarness, RepairFeasibilityProperties) {
  run_seeded(&run_repair_harness, 60, 0x4EA1);
}

TEST(FuzzHarness, ServiceChaosRecoveryProperties) {
  run_seeded(&run_service_harness, 60, 0x5E41CE);
}

TEST(FuzzHarness, StreamEquivalenceProperties) {
  run_seeded(&run_stream_harness, 60, 0x57E4);
}

// ---- Corpus replay ------------------------------------------------------

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(FuzzCorpus, EveryCorpusFileRunsCleanThroughItsHarness) {
  const std::filesystem::path root = UAVCOV_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(root))
      << "corpus directory missing: " << root;
  for (const HarnessInfo& h : all_harnesses()) {
    const std::filesystem::path dir = root / h.name;
    ASSERT_TRUE(std::filesystem::is_directory(dir))
        << "no corpus for " << h.name;
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      ++files;
      const std::vector<std::uint8_t> bytes = read_bytes(entry.path());
      ASSERT_NO_THROW(h.fn(bytes.data(), bytes.size()))
          << h.name << " corpus file " << entry.path();
    }
    EXPECT_GE(files, 3u) << "corpus for " << h.name << " looks gutted";
  }
}

}  // namespace
}  // namespace uavcov::fuzz
