// Tests for the SVG canvas and deployment renderer.
#include <gtest/gtest.h>

#include <fstream>

#include "core/appro_alg.hpp"
#include "viz/render.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov::viz {
namespace {

TEST(Svg, XmlEscape) {
  EXPECT_EQ(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(Svg, DocumentStructure) {
  SvgCanvas canvas(1000, 500, 0.5);
  canvas.circle(100, 100, 50, "#ff0000");
  canvas.line(0, 0, 1000, 500, "#000000");
  canvas.rect(10, 10, 20, 20, "#00ff00");
  canvas.text(500, 250, "label <&>", 12);
  const std::string svg = canvas.str();
  EXPECT_NE(svg.find("<?xml"), std::string::npos);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("label &lt;&amp;&gt;"), std::string::npos);
  EXPECT_EQ(canvas.width_px(), 500);
  EXPECT_EQ(canvas.height_px(), 250);
}

TEST(Svg, YAxisIsFlipped) {
  SvgCanvas canvas(100, 100, 1.0);
  canvas.circle(0, 0, 1, "#000");  // world origin = bottom-left
  const std::string svg = canvas.str();
  // Pixel y of world y=0 must be the canvas height (100), not 0.
  EXPECT_NE(svg.find("cy=\"100.0\""), std::string::npos);
}

TEST(Svg, RejectsBadDimensions) {
  EXPECT_THROW(SvgCanvas(0, 10, 1), ContractError);
  EXPECT_THROW(SvgCanvas(10, 10, 0), ContractError);
}

TEST(Svg, SaveWritesFile) {
  const std::string path = testing::TempDir() + "/uavcov_canvas.svg";
  SvgCanvas canvas(100, 100, 1.0);
  canvas.save(path);
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.substr(0, 5), "<?xml");
}

TEST(Render, FullDeploymentRendering) {
  Rng rng(3);
  workload::ScenarioConfig config;
  config.width_m = 1200;
  config.height_m = 900;
  config.cell_side_m = 300;
  config.user_count = 30;
  config.fleet.uav_count = 4;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  ApproAlgParams params;
  params.s = 1;
  const Solution sol = appro_alg(sc, params);

  RenderOptions options;
  options.draw_associations = true;
  const std::string svg = render_deployment(sc, sol, options);
  // One <circle> per user plus per UAV plus coverage discs.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_GE(circles, static_cast<std::size_t>(30 + 2 *
            static_cast<std::int32_t>(sol.deployments.size())));
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Render, ByteIdenticalAcrossRuns) {
  // The renderer feeds mission reports and the docs; byte-identical output
  // for identical input means SVG diffs in review are always real changes.
  workload::ScenarioConfig config;
  config.width_m = 1200;
  config.height_m = 900;
  config.cell_side_m = 300;
  config.user_count = 25;
  config.fleet.uav_count = 3;
  RenderOptions options;
  options.draw_associations = true;
  std::string first;
  for (int run = 0; run < 3; ++run) {
    Rng rng(42);
    const Scenario sc = workload::make_disaster_scenario(config, rng);
    ApproAlgParams params;
    params.s = 1;
    const Solution sol = appro_alg(sc, params);
    const std::string svg = render_deployment(sc, sol, options);
    if (run == 0) {
      first = svg;
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(svg, first) << "render differs on run " << run;
    }
  }
}

TEST(Render, ScenarioOnlyPlot) {
  Rng rng(4);
  workload::ScenarioConfig config;
  config.width_m = 600;
  config.height_m = 600;
  config.cell_side_m = 300;
  config.user_count = 10;
  config.fleet.uav_count = 2;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  Solution empty;
  const std::string svg = render_deployment(sc, empty);
  // Users render red (unserved) and no UAV labels appear.
  EXPECT_NE(svg.find("#c2504a"), std::string::npos);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(Render, MismatchedSolutionRejected) {
  Rng rng(5);
  workload::ScenarioConfig config;
  config.width_m = 600;
  config.height_m = 600;
  config.cell_side_m = 300;
  config.user_count = 10;
  config.fleet.uav_count = 2;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  Solution bad;
  bad.user_to_deployment.assign(3, -1);  // wrong size
  EXPECT_THROW(render_deployment(sc, bad), ContractError);
}

TEST(Render, FileOutput) {
  Rng rng(6);
  workload::ScenarioConfig config;
  config.width_m = 600;
  config.height_m = 600;
  config.cell_side_m = 300;
  config.user_count = 5;
  config.fleet.uav_count = 2;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  const std::string path = testing::TempDir() + "/uavcov_render.svg";
  render_deployment_file(path, sc, {});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

}  // namespace
}  // namespace uavcov::viz
