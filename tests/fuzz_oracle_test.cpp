// Tests for the brute-force bipartite matching oracle (src/fuzz) — the
// ground truth the assignment fuzzer trusts, so it gets its own scrutiny:
// hand-computed optima, witness feasibility, precondition enforcement, and
// a ~1k-instance differential against flow::dinic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "flow/dinic.hpp"
#include "fuzz/oracle_matching.hpp"

namespace uavcov::fuzz {
namespace {

/// Recomputes served/loads from the witness and asserts feasibility.
void expect_witness_feasible(const MatchingInstance& instance,
                             const MatchingResult& result) {
  ASSERT_EQ(result.user_to_deployment.size(),
            static_cast<std::size_t>(instance.user_count));
  std::vector<std::int32_t> load(instance.capacity.size(), 0);
  std::int64_t served = 0;
  for (std::size_t u = 0; u < result.user_to_deployment.size(); ++u) {
    const std::int32_t d = result.user_to_deployment[u];
    if (d == -1) continue;
    ASSERT_GE(d, 0);
    ASSERT_LT(static_cast<std::size_t>(d), instance.capacity.size());
    const auto& elig = instance.eligible[u];
    EXPECT_NE(std::find(elig.begin(), elig.end(), d), elig.end())
        << "user " << u << " assigned to ineligible deployment " << d;
    ++load[static_cast<std::size_t>(d)];
    ++served;
  }
  EXPECT_EQ(served, result.served);
  for (std::size_t d = 0; d < load.size(); ++d) {
    EXPECT_LE(load[d], instance.capacity[d]) << "deployment " << d;
  }
}

TEST(OracleMatching, EmptyInstance) {
  const MatchingResult r = oracle_max_matching({});
  EXPECT_EQ(r.served, 0);
  EXPECT_TRUE(r.user_to_deployment.empty());
}

TEST(OracleMatching, SingleDeploymentCapacityBinds) {
  MatchingInstance inst;
  inst.user_count = 3;
  inst.capacity = {2};
  inst.eligible = {{0}, {0}, {0}};
  const MatchingResult r = oracle_max_matching(inst);
  EXPECT_EQ(r.served, 2);
  expect_witness_feasible(inst, r);
}

TEST(OracleMatching, CapacityZeroDeploymentServesNobody) {
  MatchingInstance inst;
  inst.user_count = 2;
  inst.capacity = {0};
  inst.eligible = {{0}, {0}};
  const MatchingResult r = oracle_max_matching(inst);
  EXPECT_EQ(r.served, 0);
  expect_witness_feasible(inst, r);
}

TEST(OracleMatching, RequiresAugmentingPathReasoning) {
  // Greedy in user order (u0 -> d0) strands u1; the optimum reroutes
  // u0 -> d1.  A correct oracle must find 2.
  MatchingInstance inst;
  inst.user_count = 2;
  inst.capacity = {1, 1};
  inst.eligible = {{0, 1}, {0}};
  const MatchingResult r = oracle_max_matching(inst);
  EXPECT_EQ(r.served, 2);
  expect_witness_feasible(inst, r);
}

TEST(OracleMatching, HandComputedMixedInstance) {
  // d0 (cap 2), d1 (cap 1); u3 has no eligible deployment.
  // Optimum: u0,u1 -> d0, u2 -> d1 = 3.
  MatchingInstance inst;
  inst.user_count = 4;
  inst.capacity = {2, 1};
  inst.eligible = {{0}, {0, 1}, {1}, {}};
  const MatchingResult r = oracle_max_matching(inst);
  EXPECT_EQ(r.served, 3);
  EXPECT_EQ(r.user_to_deployment[3], -1);
  expect_witness_feasible(inst, r);
}

TEST(OracleMatching, DuplicateEligibilityEntriesIgnored) {
  MatchingInstance inst;
  inst.user_count = 1;
  inst.capacity = {1};
  inst.eligible = {{0, 0, 0}};
  EXPECT_EQ(oracle_max_matching(inst).served, 1);
}

TEST(OracleMatching, LargeCapacitiesAreClipped) {
  // Paper-scale capacities (300) must not blow up the DP: clipping to the
  // user count keeps the state space tiny.
  MatchingInstance inst;
  inst.user_count = 5;
  inst.capacity = {300, 300};
  inst.eligible = {{0, 1}, {0}, {0}, {1}, {1}};
  const MatchingResult r = oracle_max_matching(inst);
  EXPECT_EQ(r.served, 5);
  expect_witness_feasible(inst, r);
}

TEST(OracleMatching, RejectsOversizedInstances) {
  MatchingInstance too_many_users;
  too_many_users.user_count = 17;
  too_many_users.eligible.assign(17, {});
  EXPECT_THROW(oracle_max_matching(too_many_users), ContractError);

  MatchingInstance inst;
  inst.user_count = 1;
  inst.capacity = {-1};
  inst.eligible = {{}};
  EXPECT_THROW(oracle_max_matching(inst), ContractError);

  MatchingInstance bad_eligible;
  bad_eligible.user_count = 1;
  bad_eligible.capacity = {1};
  bad_eligible.eligible = {{5}};  // deployment 5 does not exist
  EXPECT_THROW(oracle_max_matching(bad_eligible), ContractError);
}

/// Independent reference: the instance as a raw max-flow on DinicFlow
/// (s -> user (1) -> deployment (1 if eligible) -> t (cap)).  This is the
/// same reduction solve_assignment uses, built here from scratch so the
/// differential pits the oracle's DP against flow::dinic directly.
std::int64_t dinic_served(const MatchingInstance& instance) {
  DinicFlow flow;
  const auto s = flow.add_node();
  const auto t = flow.add_node();
  std::vector<DinicFlow::FlowNode> user_node;
  user_node.reserve(static_cast<std::size_t>(instance.user_count));
  for (std::int32_t u = 0; u < instance.user_count; ++u) {
    user_node.push_back(flow.add_node());
    flow.add_edge(s, user_node.back(), 1);
  }
  std::vector<DinicFlow::FlowNode> dep_node;
  dep_node.reserve(instance.capacity.size());
  for (const std::int32_t cap : instance.capacity) {
    dep_node.push_back(flow.add_node());
    flow.add_edge(dep_node.back(), t, cap);
  }
  for (std::int32_t u = 0; u < instance.user_count; ++u) {
    for (const std::int32_t d :
         instance.eligible[static_cast<std::size_t>(u)]) {
      flow.add_edge(user_node[static_cast<std::size_t>(u)],
                    dep_node[static_cast<std::size_t>(d)], 1);
    }
  }
  return flow.augment(s, t);
}

MatchingInstance random_instance(Rng& rng) {
  MatchingInstance inst;
  inst.user_count = static_cast<std::int32_t>(rng.uniform_int(0, 10));
  const std::int64_t deployments = rng.uniform_int(0, 4);
  for (std::int64_t d = 0; d < deployments; ++d) {
    inst.capacity.push_back(static_cast<std::int32_t>(rng.uniform_int(0, 3)));
  }
  inst.eligible.assign(static_cast<std::size_t>(inst.user_count), {});
  for (auto& elig : inst.eligible) {
    for (std::int64_t d = 0; d < deployments; ++d) {
      if (rng.chance(0.5)) elig.push_back(static_cast<std::int32_t>(d));
    }
  }
  return inst;
}

TEST(OracleMatching, AgreesWithDinicOnSeededRandomInstances) {
  std::int64_t nontrivial = 0;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed * 2654435761ULL + 17);
    const MatchingInstance inst = random_instance(rng);
    const MatchingResult oracle = oracle_max_matching(inst);
    ASSERT_EQ(oracle.served, dinic_served(inst)) << "seed " << seed;
    expect_witness_feasible(inst, oracle);
    if (oracle.served > 0) ++nontrivial;
  }
  // The generator must actually produce matchable instances, or the
  // differential above proves nothing.
  EXPECT_GT(nontrivial, 500);
}

}  // namespace
}  // namespace uavcov::fuzz
