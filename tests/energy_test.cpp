// Tests for the energy/endurance substrate.
#include <gtest/gtest.h>

#include "core/appro_alg.hpp"
#include "energy/power.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov::energy {
namespace {

TEST(HoverPower, PlausibleForM300Class) {
  // A loaded M300-class airframe hovers on roughly 1–2 kW.
  const Airframe m300;
  const double p = hover_power_w(m300);
  EXPECT_GT(p, 800.0);
  EXPECT_LT(p, 2500.0);
}

TEST(HoverPower, GrowsWithPayloadSuperlinearly) {
  Airframe clean;
  clean.payload_kg = 0.0;
  Airframe loaded = clean;
  loaded.payload_kg = 2.7;
  const double p0 = hover_power_w(clean);
  const double p1 = hover_power_w(loaded);
  // (m+Δ)^{3/2} growth: more than proportional to the mass increase.
  const double mass_ratio = (clean.mass_kg + 2.7) / clean.mass_kg;
  EXPECT_GT(p1 / p0, mass_ratio);
}

TEST(HoverPower, BiggerDiscIsCheaper) {
  Airframe small;
  Airframe big = small;
  big.rotor_disc_area_m2 = 2 * small.rotor_disc_area_m2;
  EXPECT_LT(hover_power_w(big), hover_power_w(small));
}

TEST(HoverPower, Contracts) {
  Airframe bad;
  bad.mass_kg = 0;
  EXPECT_THROW(hover_power_w(bad), ContractError);
  bad = {};
  bad.propulsive_efficiency = 1.5;
  EXPECT_THROW(hover_power_w(bad), ContractError);
  bad = {};
  bad.battery_wh = 0;
  EXPECT_THROW(endurance_s(bad), ContractError);
}

TEST(Endurance, PlausibleForM300Class) {
  // Loaded M300-class endurance lands in the 15–40 minute range.
  const Airframe m300;
  const double t = endurance_s(m300);
  EXPECT_GT(t, 15 * 60.0);
  EXPECT_LT(t, 40 * 60.0);
}

TEST(Endurance, UnloadedFliesLonger) {
  Airframe loaded;
  Airframe clean = loaded;
  clean.payload_kg = 0.0;
  clean.basestation_w = 0.0;
  EXPECT_GT(endurance_s(clean), endurance_s(loaded));
}

TEST(EnduranceReport, FindsTheLimitingUav) {
  Solution sol;
  sol.deployments = {{UavId{0}, LocationId{0}},
                     {UavId{1}, LocationId{1}},
                     {UavId{2}, LocationId{2}}};
  std::vector<Airframe> airframes(3);
  airframes[1].battery_wh = 200.0;  // the weak battery
  const auto report = endurance_report(sol, airframes, /*mission_s=*/60.0);
  ASSERT_EQ(report.per_uav_endurance_s.size(), 3u);
  EXPECT_EQ(report.limiting_deployment, 1);
  EXPECT_DOUBLE_EQ(report.network_lifetime_s,
                   report.per_uav_endurance_s[1]);
  EXPECT_TRUE(report.infeasible.empty());
}

TEST(EnduranceReport, FlagsInfeasibleMissions) {
  Solution sol;
  sol.deployments = {{UavId{0}, LocationId{0}}};
  const std::vector<Airframe> airframes(1);
  const double endurance = endurance_s(airframes[0]);
  const auto ok = endurance_report(sol, airframes, endurance * 0.9);
  EXPECT_TRUE(ok.infeasible.empty());
  const auto too_long = endurance_report(sol, airframes, endurance * 1.1);
  ASSERT_EQ(too_long.infeasible.size(), 1u);
  EXPECT_EQ(too_long.infeasible[0], 0);
}

TEST(EnduranceReport, EmptyDeploymentHasZeroLifetime) {
  const auto report = endurance_report(Solution{}, {}, 60.0);
  EXPECT_EQ(report.network_lifetime_s, 0.0);
  EXPECT_EQ(report.limiting_deployment, -1);
}

TEST(EnduranceReport, MissingAirframeRejected) {
  Solution sol;
  sol.deployments = {{UavId{2}, LocationId{0}}};
  const std::vector<Airframe> airframes(2);  // UAV 2 undescribed
  EXPECT_THROW(endurance_report(sol, airframes, 60.0), ContractError);
}

TEST(AirframesForFleet, SplitsByCapacityThreshold) {
  Rng rng(4);
  workload::ScenarioConfig config;
  config.user_count = 10;
  config.fleet.uav_count = 30;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  const auto airframes = airframes_for_fleet(sc, 200);
  ASSERT_EQ(airframes.size(), 30u);
  for (std::size_t k = 0; k < airframes.size(); ++k) {
    if (sc.fleet[UavId{k}].capacity >= 200) {
      EXPECT_GT(airframes[k].payload_kg, 4.0) << "heavy airframe expected";
    } else {
      EXPECT_LT(airframes[k].payload_kg, 4.0) << "light airframe expected";
    }
  }
}

TEST(EndToEnd, DeploymentEnduranceAudit) {
  Rng rng(9);
  workload::ScenarioConfig config;
  config.user_count = 150;
  config.fleet.uav_count = 8;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  ApproAlgParams params;
  params.s = 1;
  params.candidate_cap = 20;
  const Solution sol = appro_alg(sc, params);
  const auto report = endurance_report(
      sol, airframes_for_fleet(sc), /*mission_s=*/10 * 60.0);
  EXPECT_EQ(report.per_uav_endurance_s.size(), sol.deployments.size());
  EXPECT_GT(report.network_lifetime_s, 10 * 60.0);  // 10 min is easy
}

}  // namespace
}  // namespace uavcov::energy
