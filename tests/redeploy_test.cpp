// Tests for user mobility (workload::MobilityModel) and the §II-C
// re-deployment controller.
#include <gtest/gtest.h>

#include <algorithm>
#include "core/redeploy.hpp"
#include "workload/mobility.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

Scenario small_scenario(std::int32_t users = 80, std::int32_t uavs = 5) {
  Rng rng(42);
  workload::ScenarioConfig config;
  config.width_m = 1500;
  config.height_m = 1500;
  config.cell_side_m = 300;
  config.user_count = users;
  config.fleet.uav_count = uavs;
  config.fleet.capacity_min = 10;
  config.fleet.capacity_max = 40;
  return workload::make_disaster_scenario(config, rng);
}

TEST(Mobility, UsersStayInsideArea) {
  Scenario sc = small_scenario();
  workload::MobilityModel model(sc, {}, 1);
  for (int step = 0; step < 50; ++step) {
    model.step(sc, 60.0);
    EXPECT_NO_THROW(sc.validate());
  }
}

TEST(Mobility, DisplacementBoundedBySpeed) {
  Scenario sc = small_scenario();
  const auto before = sc.users;
  workload::MobilityConfig config;
  config.speed_m_s = 2.0;
  workload::MobilityModel model(sc, config, 1);
  model.step(sc, 30.0);  // at most 60 m per user
  for (const UserId i : sc.users.ids()) {
    EXPECT_LE(distance(before[i].pos, sc.users[i].pos), 60.0 + 1e-9);
  }
  EXPECT_LE(model.total_displacement_m(),
            60.0 * static_cast<double>(sc.users.size()) + 1e-6);
  EXPECT_GT(model.total_displacement_m(), 0.0);
}

TEST(Mobility, DeterministicForSeed) {
  Scenario a = small_scenario();
  Scenario b = small_scenario();
  workload::MobilityModel ma(a, {}, 9);
  workload::MobilityModel mb(b, {}, 9);
  for (int step = 0; step < 10; ++step) {
    ma.step(a, 60.0);
    mb.step(b, 60.0);
  }
  for (const UserId i : a.users.ids()) {
    EXPECT_EQ(a.users[i].pos, b.users[i].pos);
  }
}

TEST(Mobility, RejectsBadConfig) {
  Scenario sc = small_scenario();
  workload::MobilityConfig config;
  config.speed_m_s = 0.0;
  EXPECT_THROW(workload::MobilityModel(sc, config, 1), ContractError);
  workload::MobilityModel ok(sc, {}, 1);
  EXPECT_THROW(ok.step(sc, 0.0), ContractError);
}

TEST(Mobility, BoundToOneScenario) {
  Scenario sc = small_scenario();
  workload::MobilityModel model(sc, {}, 1);
  Scenario other = small_scenario(10, 2);
  EXPECT_THROW(model.step(other, 1.0), ContractError);
}

TEST(Redeploy, FirstUpdateSolvesFromScratch) {
  Scenario sc = small_scenario();
  RedeployPolicy policy;
  policy.appro.s = 1;
  RedeployController controller(policy);
  const Solution& sol = controller.update(sc);
  EXPECT_EQ(controller.full_solves(), 1);
  EXPECT_GT(sol.served, 0);
  const CoverageModel cov(sc);
  validate_solution(sc, cov, sol);
}

TEST(Redeploy, StablePositionsDoNotRetrigger) {
  Scenario sc = small_scenario();
  RedeployPolicy policy;
  policy.appro.s = 1;
  RedeployController controller(policy);
  controller.update(sc);
  for (int i = 0; i < 5; ++i) controller.update(sc);
  EXPECT_EQ(controller.full_solves(), 1);
  EXPECT_DOUBLE_EQ(controller.uav_travel_m(), 0.0);
}

TEST(Redeploy, MassUserShiftTriggersResolve) {
  Scenario sc = small_scenario();
  RedeployPolicy policy;
  policy.appro.s = 1;
  policy.degradation_threshold = 0.9;
  RedeployController controller(policy);
  const std::int64_t before = controller.update(sc).served;
  ASSERT_GT(before, 0);
  // Teleport every user into one far corner pocket: the standing
  // deployment loses them, the controller must re-solve and recover.
  Rng rng(5);
  for (User& u : sc.users) {
    u.pos = {sc.grid.width() - rng.uniform(0, 120),
             sc.grid.height() - rng.uniform(0, 120)};
  }
  const Solution& after = controller.update(sc);
  EXPECT_EQ(controller.full_solves(), 2);
  EXPECT_GT(after.served, before / 2);
  const CoverageModel cov(sc);
  validate_solution(sc, cov, after);
}

TEST(Redeploy, TravelAccountedOnResolve) {
  Scenario sc = small_scenario();
  RedeployPolicy policy;
  policy.appro.s = 1;
  RedeployController controller(policy);
  controller.update(sc);
  for (User& u : sc.users) {
    u.pos = {sc.grid.width() - u.pos.x, sc.grid.height() - u.pos.y};
  }
  controller.update(sc);
  if (controller.full_solves() == 2) {
    // UAVs present in both plans moved across the map.
    EXPECT_GE(controller.uav_travel_m(), 0.0);
  }
}

TEST(Redeploy, MobilityEndToEndStaysFeasible) {
  Scenario sc = small_scenario(120, 6);
  workload::MobilityModel mobility(sc, {}, 7);
  RedeployPolicy policy;
  policy.appro.s = 1;
  policy.appro.candidate_cap = 15;
  RedeployController controller(policy);
  for (int tick = 0; tick < 8; ++tick) {
    const Solution& sol = controller.update(sc);
    const CoverageModel cov(sc);
    validate_solution(sc, cov, sol);
    mobility.step(sc, 600.0);
  }
  EXPECT_GE(controller.full_solves(), 1);
}

}  // namespace
}  // namespace uavcov
