// Sharded mission-service acceptance suite (docs/SERVICE.md).  Registered
// with UAVCOV_AUDIT=1 (tests/CMakeLists.txt), so every stitched solution
// runs through the deep §II-C feasibility audits plus the shard-partition
// audit — the chaos drills below prove every injected shard failure is
// either recovered by retry/fallback or named in the DegradationReport,
// never silently lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "core/appro_alg.hpp"
#include "core/solution.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"
#include "service/supervisor.hpp"
#include "service/tiling.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

using service::AttemptOutcome;
using service::AttemptRecord;
using service::CancelLatch;
using service::JobQueue;
using service::JobResult;
using service::JobSpec;
using service::make_shard_fault_plan;
using service::make_tiling;
using service::MissionConfig;
using service::ShardFault;
using service::ShardFaultConfig;
using service::ShardFaultKind;
using service::ShardFaultPlan;
using service::solve_mission;
using service::solve_tile_supervised;
using service::SupervisorPolicy;
using service::Tile;
using service::TilePlan;
using service::TileStatus;
using service::TilingParams;

Scenario mission_scenario(std::uint64_t seed, std::int32_t users = 120,
                          std::int32_t uavs = 8) {
  Rng rng(seed);
  workload::ScenarioConfig config;
  config.width_m = 1500;
  config.height_m = 1500;
  config.cell_side_m = 300;
  config.user_count = users;
  config.fleet.uav_count = uavs;
  config.fleet.capacity_min = 15;
  config.fleet.capacity_max = 40;
  return workload::make_disaster_scenario(config, rng);
}

MissionConfig mission_config(std::int32_t threads = 1) {
  MissionConfig config;
  config.tiling.tiles_x = 2;
  config.tiling.tiles_y = 2;
  config.tiling.halo_cells = 1;
  config.appro.s = 1;
  config.appro.threads = 1;
  config.threads = threads;
  return config;
}

// --- tiling ---------------------------------------------------------------

TEST(Tiling, CoreRectanglesPartitionGridAndUsers) {
  const Scenario sc = mission_scenario(7);
  const TilePlan plan = make_tiling(sc, TilingParams{2, 2, 1});
  ASSERT_EQ(plan.tile_count(), 4);

  // Core rectangles cover every grid cell exactly once.
  std::vector<std::int32_t> cell_owner(
      static_cast<std::size_t>(sc.grid.size()), -1);
  for (const Tile& tile : plan.tiles) {
    for (std::int32_t r = tile.row0; r < tile.row1; ++r) {
      for (std::int32_t c = tile.col0; c < tile.col1; ++c) {
        const std::size_t cell =
            static_cast<std::size_t>(sc.grid.id_of(r, c).value());
        EXPECT_EQ(cell_owner[cell], -1);
        cell_owner[cell] = tile.id.value();
      }
    }
    // Halo window contains the core.
    EXPECT_LE(tile.hcol0, tile.col0);
    EXPECT_LE(tile.hrow0, tile.row0);
    EXPECT_GE(tile.hcol1, tile.col1);
    EXPECT_GE(tile.hrow1, tile.row1);
  }
  EXPECT_EQ(std::count(cell_owner.begin(), cell_owner.end(), -1), 0);

  // Every user owned by exactly one tile; fleet slices disjoint; populated
  // tiles staffed.
  std::vector<std::int32_t> user_seen(
      static_cast<std::size_t>(sc.user_count()), 0);
  std::vector<std::int32_t> uav_seen(static_cast<std::size_t>(sc.uav_count()),
                                     0);
  for (const Tile& tile : plan.tiles) {
    for (const UserId u : tile.restricted.users) {
      ++user_seen[static_cast<std::size_t>(u.value())];
    }
    for (const UavId k : tile.restricted.fleet) {
      ++uav_seen[static_cast<std::size_t>(k.value())];
    }
    if (tile.user_count() > 0) {
      EXPECT_GE(tile.uav_count(), 1);
    }
  }
  for (const std::int32_t n : user_seen) EXPECT_EQ(n, 1);
  for (const std::int32_t n : uav_seen) EXPECT_LE(n, 1);
}

TEST(Tiling, DeterministicAcrossCalls) {
  const Scenario sc = mission_scenario(11);
  const TilePlan a = make_tiling(sc, TilingParams{2, 2, 1});
  const TilePlan b = make_tiling(sc, TilingParams{2, 2, 1});
  ASSERT_EQ(a.tile_count(), b.tile_count());
  for (std::int32_t t = 0; t < a.tile_count(); ++t) {
    const Tile& x = a.tiles[static_cast<std::size_t>(t)];
    const Tile& y = b.tiles[static_cast<std::size_t>(t)];
    EXPECT_EQ(x.restricted.users, y.restricted.users);
    EXPECT_EQ(x.restricted.fleet, y.restricted.fleet);
    EXPECT_EQ(x.restricted.scenario.fingerprint(),
              y.restricted.scenario.fingerprint());
  }
}

TEST(Tiling, RejectsBadParams) {
  const Scenario sc = mission_scenario(3);
  EXPECT_THROW(make_tiling(sc, TilingParams{0, 2, 1}), std::invalid_argument);
  EXPECT_THROW(make_tiling(sc, TilingParams{2, 2, -1}), std::invalid_argument);
}

// --- chaos plans ----------------------------------------------------------

TEST(Chaos, PlanIsSeededAndValid) {
  ShardFaultConfig config;
  config.faults = 2;
  const ShardFaultPlan a = make_shard_fault_plan(4, config, 42);
  const ShardFaultPlan b = make_shard_fault_plan(4, config, 42);
  const ShardFaultPlan c = make_shard_fault_plan(4, config, 43);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  ASSERT_EQ(a.faults.size(), 2u);
  a.validate(4);
  EXPECT_THROW(a.validate(1), std::invalid_argument);
  for (const ShardFault& f : a.faults) {
    EXPECT_NE(a.fault_for(f.tile), nullptr);
    EXPECT_GE(f.attempts, 1);
  }
}

// --- supervisor -----------------------------------------------------------

struct TileFixture {
  Scenario scenario;
  TilePlan plan;
  std::int32_t populated;  // id of a tile with users

  explicit TileFixture(std::uint64_t seed)
      : scenario(mission_scenario(seed)),
        plan(make_tiling(scenario, TilingParams{2, 2, 1})),
        populated(-1) {
    for (const Tile& tile : plan.tiles) {
      if (tile.user_count() > 0) {
        populated = tile.id.value();
        break;
      }
    }
  }
  const Tile& tile() const {
    return plan.tiles[static_cast<std::size_t>(populated)];
  }
};

TEST(Supervisor, CleanTileSolvesFirstTry) {
  const TileFixture fx(21);
  ASSERT_GE(fx.populated, 0);
  const CoverageModel coverage(fx.tile().restricted.scenario);
  ApproAlgParams appro;
  appro.s = 1;
  const auto out = solve_tile_supervised(fx.tile(), coverage, appro,
                                         SupervisorPolicy{}, nullptr, nullptr);
  EXPECT_EQ(out.status, TileStatus::kSolved);
  EXPECT_EQ(out.attempts, 1);
  ASSERT_EQ(out.journal.size(), 1u);
  EXPECT_EQ(out.journal[0].outcome, AttemptOutcome::kOk);
  EXPECT_GT(out.solution.served, 0);
}

TEST(Supervisor, FlakeIsAbsorbedByRetryWithPinnedBackoff) {
  const TileFixture fx(21);
  ShardFaultPlan chaos;
  chaos.faults.push_back(
      ShardFault{TileId{fx.populated}, ShardFaultKind::kFlake, 1});
  const CoverageModel coverage(fx.tile().restricted.scenario);
  ApproAlgParams appro;
  appro.s = 1;
  const auto out = solve_tile_supervised(fx.tile(), coverage, appro,
                                         SupervisorPolicy{}, &chaos, nullptr);
  EXPECT_EQ(out.status, TileStatus::kRecovered);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_EQ(out.journal.size(), 2u);
  EXPECT_TRUE(out.journal[0].injected);
  EXPECT_EQ(out.journal[0].outcome, AttemptOutcome::kError);
  EXPECT_DOUBLE_EQ(out.journal[0].backoff_s, 0.25);  // base * 2^(1-1)
  EXPECT_EQ(out.journal[1].outcome, AttemptOutcome::kOk);
}

TEST(Supervisor, ExhaustedRetriesFallBackToGreedy) {
  const TileFixture fx(21);
  const SupervisorPolicy policy;  // max_attempts = 3
  ShardFaultPlan chaos;
  chaos.faults.push_back(ShardFault{TileId{fx.populated},
                                    ShardFaultKind::kSolverException,
                                    policy.max_attempts});
  const CoverageModel coverage(fx.tile().restricted.scenario);
  ApproAlgParams appro;
  appro.s = 1;
  const auto out = solve_tile_supervised(fx.tile(), coverage, appro, policy,
                                         &chaos, nullptr);
  EXPECT_EQ(out.status, TileStatus::kFallback);
  EXPECT_EQ(out.attempts, policy.max_attempts + 1);
  ASSERT_EQ(out.journal.size(), 4u);
  // Pinned deterministic exponential backoff: 0.25, 0.5, 1.0.
  EXPECT_DOUBLE_EQ(out.journal[0].backoff_s, 0.25);
  EXPECT_DOUBLE_EQ(out.journal[1].backoff_s, 0.5);
  EXPECT_DOUBLE_EQ(out.journal[2].backoff_s, 1.0);
  EXPECT_TRUE(out.journal[3].fallback);
  EXPECT_EQ(out.journal[3].outcome, AttemptOutcome::kOk);
  EXPECT_EQ(out.solution.algorithm, "service.fallback");
  EXPECT_GT(out.solution.served, 0);
}

TEST(Supervisor, UnrecoverableFaultDegradesToEmptyTile) {
  const TileFixture fx(21);
  ShardFaultPlan chaos;
  chaos.faults.push_back(
      ShardFault{TileId{fx.populated}, ShardFaultKind::kDeadlineOverrun, 64});
  const CoverageModel coverage(fx.tile().restricted.scenario);
  ApproAlgParams appro;
  appro.s = 1;
  const auto out = solve_tile_supervised(fx.tile(), coverage, appro,
                                         SupervisorPolicy{}, &chaos, nullptr);
  EXPECT_EQ(out.status, TileStatus::kEmpty);
  EXPECT_EQ(out.solution.served, 0);
  for (const AttemptRecord& rec : out.journal) {
    EXPECT_NE(rec.outcome, AttemptOutcome::kOk);
  }
}

TEST(Supervisor, CorruptResultIsCaughtAndRetried) {
  const TileFixture fx(21);
  ShardFaultPlan chaos;
  chaos.faults.push_back(
      ShardFault{TileId{fx.populated}, ShardFaultKind::kCorruptResult, 1});
  const CoverageModel coverage(fx.tile().restricted.scenario);
  ApproAlgParams appro;
  appro.s = 1;
  const auto out = solve_tile_supervised(fx.tile(), coverage, appro,
                                         SupervisorPolicy{}, &chaos, nullptr);
  EXPECT_EQ(out.status, TileStatus::kRecovered);
  ASSERT_GE(out.journal.size(), 2u);
  EXPECT_EQ(out.journal[0].outcome, AttemptOutcome::kCorrupt);
  EXPECT_TRUE(out.journal[0].injected);
}

TEST(Supervisor, CancelledJobEmptiesTileImmediately) {
  const TileFixture fx(21);
  CancelLatch latch;
  latch.cancel();
  const service::JobControl control(&latch, 0.0);
  const CoverageModel coverage(fx.tile().restricted.scenario);
  ApproAlgParams appro;
  appro.s = 1;
  const auto out = solve_tile_supervised(fx.tile(), coverage, appro,
                                         SupervisorPolicy{}, nullptr,
                                         &control);
  EXPECT_EQ(out.status, TileStatus::kEmpty);
  ASSERT_EQ(out.journal.size(), 1u);
  EXPECT_EQ(out.journal[0].outcome, AttemptOutcome::kCancelled);
}

// --- chaos acceptance: pinned fault seeds over whole missions -------------

// Every injected shard failure must be recovered (retry / fallback) or
// named in the DegradationReport; the stitched solution must survive the
// deep audits (forced on via UAVCOV_AUDIT=1) and be §II-C connected.
TEST(ChaosAcceptance, SixPinnedFaultSeedsAllRecoverOrDegradeLoudly) {
  const Scenario sc = mission_scenario(31);
  const MissionConfig config = mission_config();
  ShardFaultConfig chaos_config;
  chaos_config.faults = 2;
  chaos_config.max_poison_depth = 3;
  for (const std::uint64_t seed : {101u, 102u, 103u, 104u, 105u, 106u}) {
    const ShardFaultPlan chaos =
        make_shard_fault_plan(4, chaos_config, seed);
    const JobResult result = solve_mission(sc, config, &chaos);
    EXPECT_TRUE(deployments_connected(sc, result.solution.deployments))
        << "seed " << seed;
    for (const ShardFault& fault : chaos.faults) {
      const TileStatus status =
          result.report.tiles[static_cast<std::size_t>(fault.tile.value())]
              .status;
      if (status == TileStatus::kNoUsers) continue;  // fault never fired
      EXPECT_TRUE(status == TileStatus::kRecovered ||
                  status == TileStatus::kFallback ||
                  status == TileStatus::kEmpty)
          << "seed " << seed << " tile " << fault.tile.value() << " status "
          << service::to_string(status);
    }
    // Journal and report agree on the injected failures.
    std::int64_t injected = 0;
    for (const AttemptRecord& rec : result.attempts) {
      if (rec.injected) ++injected;
    }
    EXPECT_GT(injected, 0) << "seed " << seed;
  }
}

TEST(ChaosAcceptance, UnrecoverableTileIsNamedInDegradationReport) {
  const Scenario sc = mission_scenario(31);
  const MissionConfig config = mission_config();
  ShardFaultConfig chaos_config;
  chaos_config.faults = 1;
  chaos_config.include_unrecoverable = true;
  const ShardFaultPlan chaos = make_shard_fault_plan(4, chaos_config, 107);
  const JobResult result = solve_mission(sc, config, &chaos);
  const TileId victim = chaos.faults[0].tile;
  const TileStatus status =
      result.report.tiles[static_cast<std::size_t>(victim.value())].status;
  if (status != TileStatus::kNoUsers) {
    EXPECT_EQ(status, TileStatus::kEmpty);
    EXPECT_GE(result.report.degraded_tiles(), 1);
    EXPECT_NE(result.report.to_string().find(
                  "tile " + std::to_string(victim.value())),
              std::string::npos);
  }
  // Even with a dead tile, the stitched remainder is feasible & connected
  // (validated by the UAVCOV_AUDIT=1 deep audits inside solve_mission).
  EXPECT_TRUE(deployments_connected(sc, result.solution.deployments));
}

// --- determinism ----------------------------------------------------------

TEST(Mission, ZeroFaultShardedRunIsBitIdenticalSerialVsFourThreads) {
  const Scenario sc = mission_scenario(31);
  const JobResult serial = solve_mission(sc, mission_config(1));
  const JobResult parallel = solve_mission(sc, mission_config(4));
  EXPECT_EQ(serial.solution.fingerprint(), parallel.solution.fingerprint());
  EXPECT_EQ(serial.report.degraded_tiles(), 0);
  EXPECT_EQ(parallel.report.degraded_tiles(), 0);
  ASSERT_EQ(serial.report.tiles.size(), parallel.report.tiles.size());
  for (std::size_t t = 0; t < serial.report.tiles.size(); ++t) {
    EXPECT_EQ(serial.report.tiles[t].status, parallel.report.tiles[t].status);
    EXPECT_EQ(serial.report.tiles[t].served, parallel.report.tiles[t].served);
  }
  EXPECT_GT(serial.solution.served, 0);
  EXPECT_FALSE(serial.stats.cancelled);
  EXPECT_FALSE(serial.stats.deadline_hit);
}

TEST(Mission, FaultedRunIsDeterministicAcrossThreadCounts) {
  const Scenario sc = mission_scenario(31);
  ShardFaultConfig chaos_config;
  chaos_config.faults = 2;
  const ShardFaultPlan chaos = make_shard_fault_plan(4, chaos_config, 104);
  const JobResult serial = solve_mission(sc, mission_config(1), &chaos);
  const JobResult parallel = solve_mission(sc, mission_config(4), &chaos);
  EXPECT_EQ(serial.solution.fingerprint(), parallel.solution.fingerprint());
  EXPECT_EQ(serial.stats.retries, parallel.stats.retries);
  EXPECT_EQ(serial.stats.fallbacks, parallel.stats.fallbacks);
  EXPECT_EQ(serial.attempts.size(), parallel.attempts.size());
}

TEST(Mission, PreCancelledJobDegradesEveryPopulatedTile) {
  const Scenario sc = mission_scenario(31);
  CancelLatch latch;
  latch.cancel();
  const JobResult result =
      solve_mission(sc, mission_config(), nullptr, &latch);
  EXPECT_TRUE(result.stats.cancelled);
  EXPECT_EQ(result.solution.served, 0);
  for (const auto& tile : result.report.tiles) {
    if (tile.status == TileStatus::kNoUsers) continue;
    EXPECT_EQ(tile.status, TileStatus::kEmpty);
  }
}

// --- job queue ------------------------------------------------------------

TEST(JobQueueTest, SubmitWaitMatchesDirectSolve) {
  const Scenario sc = mission_scenario(31);
  const JobResult direct = solve_mission(sc, mission_config());
  JobQueue queue(2);
  std::vector<std::int64_t> ids;
  for (std::int32_t i = 0; i < 3; ++i) {
    ids.push_back(queue.submit(JobSpec{sc, mission_config(), {}, 0.0}));
  }
  for (const std::int64_t id : ids) {
    const JobResult result = queue.wait(id);
    EXPECT_EQ(result.solution.fingerprint(), direct.solution.fingerprint());
    EXPECT_EQ(result.report.degraded_tiles(), 0);
  }
}

TEST(JobQueueTest, WaitTransfersOwnershipAndRejectsUnknownIds) {
  const Scenario sc = mission_scenario(31);
  JobQueue queue(1);
  const std::int64_t id = queue.submit(JobSpec{sc, mission_config(), {}, 0.0});
  (void)queue.wait(id);
  EXPECT_THROW((void)queue.wait(id), std::invalid_argument);   // second wait
  EXPECT_THROW((void)queue.wait(999), std::invalid_argument);  // never issued
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(999));
}

TEST(JobQueueTest, ShutdownNowRetiresQueuedJobsAsCancelled) {
  const Scenario sc = mission_scenario(31);
  JobQueue queue(1);  // single worker => later jobs stay queued
  std::vector<std::int64_t> ids;
  for (std::int32_t i = 0; i < 4; ++i) {
    ids.push_back(queue.submit(JobSpec{sc, mission_config(), {}, 0.0}));
  }
  queue.shutdown_now();
  queue.drain();
  std::int32_t cancelled = 0;
  for (const std::int64_t id : ids) {
    const JobResult result = queue.wait(id);
    if (result.stats.cancelled) ++cancelled;
  }
  // At least the never-started tail was retired as cancelled; jobs that
  // had already begun ran their (cooperatively cancelled) mission.
  EXPECT_GE(cancelled, 1);
}

// --- thread-pool cancellation hook ---------------------------------------

TEST(ThreadPoolDiscard, DropsQueuedButNotRunningTasks) {
  ThreadPool pool(1);
  sync::Mutex mu;
  sync::CondVar cv;
  bool release = false;
  bool started = false;
  std::int32_t ran = 0;
  pool.submit([&] {
    sync::UniqueLock lock(mu);
    started = true;
    cv.notify_all();
    while (!release) cv.wait(lock);
  });
  {
    sync::UniqueLock lock(mu);
    while (!started) cv.wait(lock);
  }
  for (std::int32_t i = 0; i < 5; ++i) {
    pool.submit([&] {
      const sync::LockGuard lock(mu);
      ++ran;
    });
  }
  EXPECT_EQ(pool.discard_pending(), 5u);
  {
    const sync::LockGuard lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.wait_idle();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(pool.discard_pending(), 0u);  // empty queue is a no-op
}

}  // namespace
}  // namespace uavcov
