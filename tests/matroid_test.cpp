// Tests for src/core matroids M1 / M2: axioms verified exhaustively,
// incremental counters vs the stateless oracle, paper's Fig. 2(d) quotas.
#include <gtest/gtest.h>

#include <span>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/matroid.hpp"
#include "core/segment_plan.hpp"
#include "graph/bfs.hpp"

namespace uavcov {
namespace {

TEST(PartitionMatroid, BasicAddRemove) {
  PartitionMatroid m1(3);
  EXPECT_TRUE(m1.can_add(UavId{0}));
  m1.add(UavId{0});
  EXPECT_FALSE(m1.can_add(UavId{0}));
  EXPECT_TRUE(m1.can_add(UavId{1}));
  EXPECT_EQ(m1.size(), 1);
  m1.remove(UavId{0});
  EXPECT_TRUE(m1.can_add(UavId{0}));
  EXPECT_EQ(m1.size(), 0);
}

TEST(PartitionMatroid, DoubleAddThrows) {
  PartitionMatroid m1(2);
  m1.add(UavId{1});
  EXPECT_THROW(m1.add(UavId{1}), ContractError);
}

TEST(PartitionMatroid, RemoveAbsentThrows) {
  PartitionMatroid m1(2);
  EXPECT_THROW(m1.remove(UavId{0}), ContractError);
}

TEST(PartitionMatroid, ClearResets) {
  PartitionMatroid m1(2);
  m1.add(UavId{0});
  m1.add(UavId{1});
  m1.clear();
  EXPECT_TRUE(m1.can_add(UavId{0}));
  EXPECT_TRUE(m1.can_add(UavId{1}));
  EXPECT_EQ(m1.size(), 0);
}

TEST(PartitionMatroid, AxiomsHoldExhaustively) {
  // Elements 0..5 are (uav, loc) pairs over 3 UAVs: element e has uav e/2.
  const auto independent = [](std::span<const std::int32_t> set) {
    std::int32_t used = 0;
    for (std::int32_t e : set) {
      const std::int32_t uav = e / 2;
      if (used & (1 << uav)) return false;
      used |= 1 << uav;
    }
    return true;
  };
  EXPECT_EQ(check_matroid_axioms(6, independent), "");
}

TEST(HopBudgetMatroid, PaperFigure2dQuotas) {
  // Fig. 2(d): s = 3, p = (1, 2, 2, 2), L = 10 → hmax = 2, Q = (10, 7, 1).
  const std::vector<std::int64_t> p{1, 2, 2, 2};
  EXPECT_EQ(hop_limit(3, p), 2);
  const auto q = hop_quotas(3, 10, p);
  EXPECT_EQ(q, (std::vector<std::int64_t>{10, 7, 1}));
}

TEST(HopBudgetMatroid, RespectsQuotas) {
  // 5 locations with hop distances (0, 0, 1, 1, 2); quotas Q = (4, 2, 1).
  HopBudgetMatroid m2({0, 0, 1, 1, 2}, {4, 2, 1});
  EXPECT_TRUE(m2.can_add(LocationId{0}));
  m2.add(LocationId{0});
  m2.add(LocationId{1});
  EXPECT_TRUE(m2.can_add(LocationId{2}));
  m2.add(LocationId{2});
  // Q_1 = 2 but adding location 4 (d=2) would make nodes-at->=1 equal 2,
  // fine; then location 3 would breach Q_1.
  EXPECT_TRUE(m2.can_add(LocationId{4}));
  m2.add(LocationId{4});
  EXPECT_FALSE(m2.can_add(LocationId{3}));  // would be third node at >= 1 hop
  EXPECT_EQ(m2.size(), 4);
}

TEST(HopBudgetMatroid, HmaxExcludesFarNodes) {
  HopBudgetMatroid m2({0, 3}, {5, 1, 1});
  EXPECT_FALSE(m2.can_add(LocationId{1}));  // d = 3 > hmax = 2
}

TEST(HopBudgetMatroid, UnreachableExcluded) {
  HopBudgetMatroid m2({0, kUnreachable}, {5, 1});
  EXPECT_FALSE(m2.can_add(LocationId{1}));
}

TEST(HopBudgetMatroid, RemoveRestoresCapacity) {
  HopBudgetMatroid m2({0, 1, 1}, {3, 1});
  m2.add(LocationId{1});
  EXPECT_FALSE(m2.can_add(LocationId{2}));
  m2.remove(LocationId{1});
  EXPECT_TRUE(m2.can_add(LocationId{2}));
}

TEST(HopBudgetMatroid, StatelessOracleAgreesWithCounters) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int32_t n = 6;
    std::vector<std::int32_t> dist(n);
    for (auto& d : dist) d = static_cast<std::int32_t>(rng.next_below(4));
    std::vector<std::int64_t> quotas{
        static_cast<std::int64_t>(2 + rng.next_below(4))};
    while (static_cast<std::int32_t>(quotas.size()) < 4 &&
           quotas.back() > 0) {
      quotas.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(quotas.back()) + 1)));
    }
    HopBudgetMatroid m2(dist, quotas);
    // Build a random set incrementally with can_add/add; at each step the
    // stateless oracle must agree.
    std::vector<LocationId> set;
    for (const LocationId v : IdRange<LocationId>{n}) {
      std::vector<LocationId> tentative = set;
      tentative.push_back(v);
      const bool oracle_ok = m2.is_independent(tentative);
      EXPECT_EQ(m2.can_add(v), oracle_ok);
      if (oracle_ok && rng.chance(0.7)) {
        m2.add(v);
        set.push_back(v);
      }
    }
  }
}

TEST(HopBudgetMatroid, AxiomsHoldExhaustively) {
  // Several (distance, quota) shapes, each checked over all 2^n subsets.
  struct Case {
    std::vector<std::int32_t> dist;
    std::vector<std::int64_t> quotas;
  };
  const std::vector<Case> cases = {
      {{0, 0, 1, 1, 2, 2}, {4, 2, 1}},
      {{0, 1, 1, 1, 2}, {3, 3, 1}},
      {{0, 0, 0, 1, 1, 1, 1}, {5, 2}},
      {{2, 2, 2, 1, 0}, {4, 3, 2}},
      {{0, 1, 2, 3, 4}, {3, 2, 1, 0, 0}},  // hmax cut via zero quotas
  };
  for (const auto& c : cases) {
    HopBudgetMatroid m2(c.dist, c.quotas);
    const auto independent = [&m2](std::span<const std::int32_t> set) {
      std::vector<LocationId> locs(set.begin(), set.end());
      return m2.is_independent(locs);
    };
    EXPECT_EQ(check_matroid_axioms(
                  static_cast<std::int32_t>(c.dist.size()), independent),
              "")
        << "case with " << c.dist.size() << " elements";
  }
}

TEST(HopBudgetMatroid, RandomizedAxioms) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int32_t n = 7;
    std::vector<std::int32_t> dist(static_cast<std::size_t>(n));
    for (auto& d : dist) d = static_cast<std::int32_t>(rng.next_below(3));
    // Nonincreasing quotas.
    std::vector<std::int64_t> quotas{
        static_cast<std::int64_t>(1 + rng.next_below(6))};
    for (int h = 1; h < 3; ++h) {
      quotas.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(quotas.back()) + 1)));
    }
    HopBudgetMatroid m2(dist, quotas);
    const auto independent = [&m2](std::span<const std::int32_t> set) {
      std::vector<LocationId> locs(set.begin(), set.end());
      return m2.is_independent(locs);
    };
    EXPECT_EQ(check_matroid_axioms(n, independent), "") << "trial " << trial;
  }
}

TEST(HopBudgetMatroid, RejectsIncreasingQuotas) {
  EXPECT_THROW(HopBudgetMatroid({0, 1}, {1, 2}), ContractError);
}

TEST(CheckMatroidAxioms, DetectsNonMatroid) {
  // "Independent iff size != 1" violates hereditary.
  const auto not_hereditary = [](std::span<const std::int32_t> set) {
    return set.size() != 1;
  };
  EXPECT_NE(check_matroid_axioms(3, not_hereditary), "");

  // A graphic-looking system that fails augmentation: independent sets are
  // {}, {0}, {1}, {0,1}, {2} — {2} cannot be augmented from {0,1}.
  const auto not_augmentable = [](std::span<const std::int32_t> set) {
    if (set.empty()) return true;
    if (set.size() == 1) return true;
    return set.size() == 2 && ((set[0] == 0 && set[1] == 1) ||
                               (set[0] == 1 && set[1] == 0));
  };
  EXPECT_NE(check_matroid_axioms(3, not_augmentable), "");

  // Empty set dependent → immediate failure.
  const auto no_empty = [](std::span<const std::int32_t> set) {
    return !set.empty();
  };
  EXPECT_EQ(check_matroid_axioms(2, no_empty),
            "empty set is not independent");
}

}  // namespace
}  // namespace uavcov
