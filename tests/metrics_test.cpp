// Tests for articulation points and the solution metrics module.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/appro_alg.hpp"
#include "eval/metrics.hpp"
#include "graph/articulation.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

TEST(Articulation, LineGraphInteriorNodes) {
  // 0-1-2-3: nodes 1 and 2 are cut vertices.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{1, 2}));
}

TEST(Articulation, CycleHasNone) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_TRUE(articulation_points(g).empty());
}

TEST(Articulation, StarCenter) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{0}));
}

TEST(Articulation, BridgeBetweenTriangles) {
  // Two triangles joined through node 2-3 bridge: both endpoints are cut.
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{2, 3}));
}

TEST(Articulation, DisconnectedGraphHandled) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{1}));
}

class ArticulationRandom : public testing::TestWithParam<int> {};

TEST_P(ArticulationRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 9);
  const NodeId n = 3 + static_cast<NodeId>(rng.next_below(12));
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(0.3)) edges.emplace_back(u, v);
    }
  }
  const Graph g = Graph::from_edges(n, edges);
  const auto fast = articulation_points(g);
  for (NodeId v = 0; v < n; ++v) {
    const bool expected = is_articulation_point_brute_force(g, v);
    const bool actual = std::binary_search(fast.begin(), fast.end(), v);
    EXPECT_EQ(actual, expected) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArticulationRandom, testing::Range(0, 20));

TEST(JainFairness, KnownValues) {
  using eval::jain_fairness;
  EXPECT_DOUBLE_EQ(jain_fairness({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(jain_fairness({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
  EXPECT_NEAR(jain_fairness({2, 4}), 0.9, 1e-12);  // 36/(2*20)
}

TEST(Metrics, EndToEndOnSolvedScenario) {
  Rng rng(21);
  workload::ScenarioConfig config;
  config.width_m = 1500;
  config.height_m = 1500;
  config.cell_side_m = 300;
  config.user_count = 120;
  config.fleet.uav_count = 6;
  config.fleet.capacity_min = 10;
  config.fleet.capacity_max = 50;
  const Scenario sc = workload::make_disaster_scenario(config, rng);
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 2;
  const Solution sol = appro_alg(sc, cov, params);

  const auto metrics = eval::compute_metrics(sc, cov, sol);
  EXPECT_EQ(metrics.served, sol.served);
  EXPECT_NEAR(metrics.coverage_fraction,
              static_cast<double>(sol.served) / 120.0, 1e-12);
  EXPECT_GT(metrics.capacity_utilization, 0.0);
  EXPECT_LE(metrics.capacity_utilization, 1.0 + 1e-12);
  EXPECT_GT(metrics.load_fairness, 0.0);
  EXPECT_LE(metrics.load_fairness, 1.0 + 1e-12);
  EXPECT_GT(metrics.mean_user_rate_bps, metrics.min_user_rate_bps * 0.999);
  EXPECT_GE(metrics.min_user_rate_bps, 1e3);  // every served user's r_min
  EXPECT_EQ(metrics.deployed_uavs,
            static_cast<std::int32_t>(sol.deployments.size()));
  EXPECT_GE(metrics.relay_only_uavs, 0);
  // Critical UAVs must be actual fleet members.
  for (const UavId k : metrics.critical_uavs) {
    EXPECT_TRUE(k.valid());
    EXPECT_LT(k.value(), sc.uav_count());
  }
}

TEST(Metrics, ChainDeploymentIsFragile) {
  // Straight relay chain: every interior UAV is critical.
  Scenario sc{
      .grid = Grid(500, 100, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {{{50, 50}, 1e3}, {{450, 50}, 1e3}},
      .fleet = {{2, Radio{}, 120.0},
                {2, Radio{}, 120.0},
                {2, Radio{}, 120.0},
                {2, Radio{}, 120.0},
                {2, Radio{}, 120.0}},
  };
  const CoverageModel cov(sc);
  Solution sol;
  sol.algorithm = "chain";
  sol.deployments = {{UavId{0}, LocationId{0}},
                     {UavId{1}, LocationId{1}},
                     {UavId{2}, LocationId{2}},
                     {UavId{3}, LocationId{3}},
                     {UavId{4}, LocationId{4}}};
  sol.user_to_deployment = {0, 4};
  sol.served = 2;
  const auto metrics = eval::compute_metrics(sc, cov, sol);
  EXPECT_EQ(metrics.critical_uavs.size(), 3u);  // UAVs 1, 2, 3
  EXPECT_EQ(metrics.relay_only_uavs, 3);
}

TEST(Metrics, EmptySolution) {
  Scenario sc{
      .grid = Grid(300, 300, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {{{50, 50}, 1e3}},
      .fleet = {{2, Radio{}, 120.0}},
  };
  const CoverageModel cov(sc);
  Solution empty;
  empty.user_to_deployment = {-1};
  const auto metrics = eval::compute_metrics(sc, cov, empty);
  EXPECT_EQ(metrics.served, 0);
  EXPECT_EQ(metrics.deployed_uavs, 0);
  EXPECT_TRUE(metrics.critical_uavs.empty());
}

}  // namespace
}  // namespace uavcov
