// Tests for src/channel: Al-Hourani A2G model, link budget, radius and
// altitude solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/a2g.hpp"
#include "channel/link_budget.hpp"
#include "channel/radius.hpp"
#include "common/check.hpp"
#include "common/units.hpp"

namespace uavcov {
namespace {

TEST(ElevationAngle, KnownValues) {
  EXPECT_NEAR(elevation_angle_deg(0.0, 300.0), 90.0, 1e-9);
  EXPECT_NEAR(elevation_angle_deg(300.0, 300.0), 45.0, 1e-9);
  EXPECT_NEAR(elevation_angle_deg(3000.0, 300.0), 5.71, 0.01);
}

TEST(ElevationAngle, RejectsBadInputs) {
  EXPECT_THROW(elevation_angle_deg(10.0, 0.0), ContractError);
  EXPECT_THROW(elevation_angle_deg(-1.0, 100.0), ContractError);
}

TEST(LosProbability, MonotoneIncreasingInElevation) {
  const auto env = urban_environment();
  double prev = -1.0;
  for (double theta = 0; theta <= 90; theta += 5) {
    const double p = los_probability(env, theta);
    EXPECT_GT(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(LosProbability, NearCertainOverhead) {
  EXPECT_GT(los_probability(urban_environment(), 89.0), 0.99);
}

TEST(LosProbability, EnvironmentOrdering) {
  // At a mid elevation, denser environments have lower LoS probability.
  const double theta = 30.0;
  EXPECT_GT(los_probability(suburban_environment(), theta),
            los_probability(urban_environment(), theta));
  EXPECT_GT(los_probability(urban_environment(), theta),
            los_probability(dense_urban_environment(), theta));
  EXPECT_GT(los_probability(dense_urban_environment(), theta),
            los_probability(highrise_environment(), theta));
}

TEST(Fspl, KnownValue) {
  // FSPL at 1 km, 2 GHz: 20·log10(4π·2e9·1000/c) ≈ 98.5 dB.
  EXPECT_NEAR(free_space_pathloss_db(1000.0, 2e9), 98.46, 0.05);
}

TEST(Fspl, SixDbPerDoubling) {
  const double a = free_space_pathloss_db(500.0, 2e9);
  const double b = free_space_pathloss_db(1000.0, 2e9);
  EXPECT_NEAR(b - a, 6.0206, 1e-3);
}

TEST(Fspl, RejectsBadInputs) {
  EXPECT_THROW(free_space_pathloss_db(0.0, 2e9), ContractError);
  EXPECT_THROW(free_space_pathloss_db(100.0, 0.0), ContractError);
}

TEST(A2gPathloss, BetweenLosAndNlosBounds) {
  const ChannelParams params{};
  const double h = 300.0, r = 400.0;
  const double d = std::sqrt(h * h + r * r);
  const double fspl = free_space_pathloss_db(d, params.carrier_hz);
  const double pl = a2g_pathloss_db(params, r, h);
  EXPECT_GE(pl, fspl + params.environment.eta_los_db - 1e-9);
  EXPECT_LE(pl, fspl + params.environment.eta_nlos_db + 1e-9);
}

TEST(A2gPathloss, IncreasesWithHorizontalDistance) {
  const ChannelParams params{};
  double prev = 0;
  for (double r = 50; r <= 3000; r += 250) {
    const double pl = a2g_pathloss_db(params, r, 300.0);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(U2uPathloss, IsFreeSpace) {
  const ChannelParams params{};
  EXPECT_DOUBLE_EQ(u2u_pathloss_db(params, 600.0),
                   free_space_pathloss_db(600.0, params.carrier_hz));
}

TEST(LinkBudget, SnrDecreasesWithDistance) {
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  double prev = 1e30;
  for (double r = 50; r <= 3000; r += 250) {
    const double snr = a2g_snr(ch, radio, rx, r, 300.0);
    EXPECT_LT(snr, prev);
    EXPECT_GT(snr, 0.0);
    prev = snr;
  }
}

TEST(LinkBudget, MorePowerMoreRate) {
  const ChannelParams ch{};
  const Receiver rx{};
  Radio weak{.tx_power_dbm = 24.0};
  Radio strong{.tx_power_dbm = 33.0};
  EXPECT_GT(a2g_rate_bps(ch, strong, rx, 500.0, 300.0),
            a2g_rate_bps(ch, weak, rx, 500.0, 300.0));
}

TEST(LinkBudget, PaperScaleRateComfortablyAboveMinimum) {
  // Defaults: at R_user = 500 m and H = 300 m, the rate must exceed the
  // 2 kbps minimum by orders of magnitude (the paper treats R_user as the
  // binding constraint).
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  EXPECT_GT(a2g_rate_bps(ch, radio, rx, 500.0, 300.0), 1e5);
}

TEST(ThermalNoise, KnownValue) {
  // -174 dBm/Hz + 10log10(180e3) ≈ -121.4; +7 dB NF ≈ -114.4 dBm.
  EXPECT_NEAR(thermal_noise_dbm(180e3, 7.0), -114.45, 0.05);
}

TEST(ThermalNoise, RejectsBadBandwidth) {
  EXPECT_THROW(thermal_noise_dbm(0.0, 7.0), ContractError);
}

TEST(MaxServiceRadius, MonotoneInRateRequirement) {
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  const double easy = max_service_radius(ch, radio, rx, 300.0, 1e3);
  const double hard = max_service_radius(ch, radio, rx, 300.0, 1e6);
  EXPECT_GT(easy, hard);
  EXPECT_GT(hard, 0.0);
}

TEST(MaxServiceRadius, BoundaryRateHolds) {
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  const double min_rate = 5e5;
  const double radius = max_service_radius(ch, radio, rx, 300.0, min_rate);
  EXPECT_GE(a2g_rate_bps(ch, radio, rx, radius, 300.0), min_rate);
  EXPECT_LT(a2g_rate_bps(ch, radio, rx, radius + 1.0, 300.0), min_rate);
}

TEST(MaxServiceRadius, ImpossibleRequirementGivesZero) {
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  EXPECT_DOUBLE_EQ(max_service_radius(ch, radio, rx, 300.0, 1e12), 0.0);
}

TEST(MaxServiceRadius, CapsAtSearchBound) {
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  EXPECT_DOUBLE_EQ(
      max_service_radius(ch, radio, rx, 300.0, 1.0, /*max_radius_m=*/500.0),
      500.0);
}

TEST(OptimalAltitude, BeatsBracketEdges) {
  // The optimum altitude's radius should be at least that of both bracket
  // ends (unimodality sanity).
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  const double min_rate = 2e6;
  const double h_star = optimal_altitude(ch, radio, rx, min_rate, 20, 3000);
  const double r_star = max_service_radius(ch, radio, rx, h_star, min_rate);
  EXPECT_GE(r_star,
            max_service_radius(ch, radio, rx, 20.0, min_rate) - 1.0);
  EXPECT_GE(r_star,
            max_service_radius(ch, radio, rx, 3000.0, min_rate) - 1.0);
  EXPECT_GT(h_star, 20.0);
  EXPECT_LT(h_star, 3000.0);
}

TEST(OptimalAltitude, DenserEnvironmentPrefersSteeperElevation) {
  // Al-Hourani's headline result: the *optimal elevation angle* grows with
  // the environment's NLoS severity (suburban ≈ 20°, highrise ≈ 75°).  The
  // absolute optimal altitude can shrink because the denser environment's
  // radius collapses; the angle is the invariant claim.
  ChannelParams suburban{};
  suburban.environment = suburban_environment();
  ChannelParams highrise{};
  highrise.environment = highrise_environment();
  const Radio radio{};
  const Receiver rx{};
  const double min_rate = 2e6;
  auto optimal_angle = [&](const ChannelParams& ch) {
    const double h = optimal_altitude(ch, radio, rx, min_rate);
    const double r = max_service_radius(ch, radio, rx, h, min_rate);
    return elevation_angle_deg(r, h);
  };
  EXPECT_GT(optimal_angle(highrise), optimal_angle(suburban) + 5.0);
}

TEST(OptimalAltitude, RejectsBadBracket) {
  const ChannelParams ch{};
  const Radio radio{};
  const Receiver rx{};
  EXPECT_THROW(optimal_altitude(ch, radio, rx, 1e3, 100.0, 50.0),
               ContractError);
}

}  // namespace
}  // namespace uavcov
