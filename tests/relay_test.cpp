// Tests for the relay stitcher (Algorithm 2 lines 13–15).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/relay.hpp"
#include "graph/bfs.hpp"

namespace uavcov {
namespace {

Graph line_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(v - 1, v);
  return Graph::from_edges(n, edges);
}

TEST(RelayStitch, TrivialSets) {
  const Graph g = line_graph(5);
  const auto empty = stitch_connected(g, {});
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->nodes.empty());
  const CellId one[] = {CellId{3}};
  const auto single = stitch_connected(g, one);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->nodes, (std::vector<CellId>{CellId{3}}));
  EXPECT_EQ(single->relay_count, 0);
}

TEST(RelayStitch, AdjacentNodesNeedNoRelays) {
  const Graph g = line_graph(5);
  const CellId chosen[] = {CellId{1}, CellId{2}, CellId{3}};
  const auto plan = stitch_connected(g, chosen);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->relay_count, 0);
  EXPECT_EQ(plan->nodes.size(), 3u);
}

TEST(RelayStitch, FillsGapsOnALine) {
  const Graph g = line_graph(7);
  const CellId chosen[] = {CellId{0}, CellId{6}};
  const auto plan = stitch_connected(g, chosen);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->relay_count, 5);
  const std::set<CellId> nodes(plan->nodes.begin(), plan->nodes.end());
  EXPECT_EQ(nodes, (std::set<CellId>{CellId{0}, CellId{1}, CellId{2},
                                     CellId{3}, CellId{4}, CellId{5},
                                     CellId{6}}));
  // Chosen nodes come first and keep their order.
  EXPECT_EQ(plan->nodes[0], CellId{0});
  EXPECT_EQ(plan->nodes[1], CellId{6});
}

TEST(RelayStitch, UnreachablePairIsRejected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const CellId chosen[] = {CellId{0}, CellId{3}};
  EXPECT_FALSE(stitch_connected(g, chosen).has_value());
}

TEST(RelayStitch, ResultInducesConnectedSubgraph) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    // Random connected graph: a random tree plus extra edges.
    const NodeId n = 8 + static_cast<NodeId>(rng.next_below(12));
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId v = 1; v < n; ++v) {
      edges.emplace_back(
          static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v))),
          v);
    }
    std::set<std::pair<NodeId, NodeId>> have(edges.begin(), edges.end());
    for (int extra = 0; extra < n / 2; ++extra) {
      const auto a = static_cast<NodeId>(rng.next_below(n));
      const auto b = static_cast<NodeId>(rng.next_below(n));
      const auto e = std::minmax(a, b);
      if (a != b && !have.count({e.first, e.second})) {
        have.insert({e.first, e.second});
        edges.emplace_back(e.first, e.second);
      }
    }
    const Graph g = Graph::from_edges(n, edges);
    std::vector<CellId> chosen;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.chance(0.3)) chosen.push_back(to_cell(v));
    }
    if (chosen.empty()) chosen.push_back(CellId{0});
    const auto plan = stitch_connected(g, chosen);
    ASSERT_TRUE(plan.has_value());
    std::vector<NodeId> plan_nodes;
    for (const CellId c : plan->nodes) plan_nodes.push_back(to_node(c));
    EXPECT_TRUE(is_induced_subgraph_connected(g, plan_nodes));
    // Every chosen node is present, no duplicates.
    const std::set<CellId> unique(plan->nodes.begin(), plan->nodes.end());
    EXPECT_EQ(unique.size(), plan->nodes.size());
    for (const CellId c : chosen) EXPECT_TRUE(unique.count(c));
    EXPECT_EQ(plan->relay_count,
              static_cast<std::int32_t>(plan->nodes.size() - chosen.size()));
  }
}

TEST(RelayStitch, RelayCountIsReasonablyTight) {
  // Star of paths: center 0, arms of length 3; choosing the three arm tips
  // needs at most the 2-hop interior of each arm + center = 7 relays...
  // actually 3 arms × 2 interior + center = 7, total nodes = 10.
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 3},    // arm A: tip 3
      {0, 4}, {4, 5}, {5, 6},    // arm B: tip 6
      {0, 7}, {7, 8}, {8, 9}};   // arm C: tip 9
  const Graph g = Graph::from_edges(10, edges);
  const CellId chosen[] = {CellId{3}, CellId{6}, CellId{9}};
  const auto plan = stitch_connected(g, chosen);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->nodes.size(), 10u);
  EXPECT_EQ(plan->relay_count, 7);
}

}  // namespace
}  // namespace uavcov
