// Binary scenario/solution format (io/binary.hpp) and the format-agnostic
// io entry points (io/serialize.hpp): round-trip bit-exactness on the six
// pinned regression instances, corruption rejection (header, table,
// checksums), and magic sniffing / cross-format error messages.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "io/binary.hpp"
#include "io/serialize.hpp"
#include "io/trace.hpp"
#include "stream/churn.hpp"
#include "workload/builder.hpp"

namespace uavcov {
namespace {

/// The six (seed, users, uavs) instances the golden regression suite pins.
struct Pinned {
  std::uint64_t seed;
  std::int32_t users;
  std::int32_t uavs;
};
const std::vector<Pinned>& pinned_instances() {
  static const std::vector<Pinned> kPinned = {
      {12345, 400, 8}, {777, 250, 6},  {2024, 300, 8},
      {31337, 350, 10}, {555, 450, 7}, {9090, 500, 9},
  };
  return kPinned;
}

Scenario make_pinned(const Pinned& p) {
  return workload::ScenarioBuilder()
      .users(p.users)
      .uavs(p.uavs)
      .seed(p.seed)
      .build();
}

std::string scenario_bytes(const Scenario& scenario, io::Format format) {
  std::ostringstream out;
  io::save_scenario(out, scenario, format);
  return out.str();
}

std::string solution_bytes(const Solution& solution, io::Format format) {
  std::ostringstream out;
  io::save_solution(out, solution, format);
  return out.str();
}

/// Expects `fn` to throw a ContractError whose message contains `needle`.
template <typename Fn>
void expect_contract_error(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected ContractError containing '" << needle << "'";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(IoBinary, PinnedScenariosRoundTripBitExact) {
  for (const Pinned& p : pinned_instances()) {
    const Scenario scenario = make_pinned(p);
    const std::uint64_t fp = scenario.fingerprint();

    // binary → load → fingerprint preserved, re-save byte-identical.
    const std::string binary = scenario_bytes(scenario, io::Format::kBinary);
    ASSERT_TRUE(io::has_binary_scenario_magic(binary));
    const Scenario from_binary = io::load_scenario(std::string_view(binary));
    EXPECT_EQ(from_binary.fingerprint(), fp) << "seed " << p.seed;
    EXPECT_EQ(scenario_bytes(from_binary, io::Format::kBinary), binary)
        << "seed " << p.seed;

    // text → binary → text crossing: same fingerprint, same text bytes.
    const std::string text = scenario_bytes(scenario, io::Format::kText);
    const Scenario from_text = io::load_scenario(std::string_view(text));
    EXPECT_EQ(from_text.fingerprint(), fp);
    EXPECT_EQ(scenario_bytes(from_binary, io::Format::kText), text)
        << "seed " << p.seed;
  }
}

TEST(IoBinary, SolutionRoundTripsInBothFormats) {
  Solution solution;
  solution.algorithm = "approAlg";
  solution.deployments = {{UavId{2}, LocationId{7}},
                          {UavId{0}, LocationId{3}}};
  solution.user_to_deployment = std::vector<std::int32_t>{0, -1, 1, 1, -1};
  solution.served = 3;
  solution.solve_seconds = 0.125;

  const std::string binary = solution_bytes(solution, io::Format::kBinary);
  ASSERT_TRUE(io::has_binary_solution_magic(binary));
  const Solution loaded =
      io::load_solution(std::string_view(binary), /*user_count=*/5);
  EXPECT_EQ(loaded.algorithm, solution.algorithm);
  EXPECT_EQ(loaded.deployments, solution.deployments);
  EXPECT_EQ(loaded.user_to_deployment, solution.user_to_deployment);
  EXPECT_EQ(loaded.served, solution.served);
  EXPECT_EQ(loaded.solve_seconds, solution.solve_seconds);
  EXPECT_EQ(loaded.fingerprint(), solution.fingerprint());
  EXPECT_EQ(solution_bytes(loaded, io::Format::kBinary), binary);

  const std::string text = solution_bytes(solution, io::Format::kText);
  const Solution from_text =
      io::load_solution(std::string_view(text), /*user_count=*/5);
  EXPECT_EQ(from_text.fingerprint(), loaded.fingerprint());
}

TEST(IoBinary, SolutionUserCountMismatchRejected) {
  Solution solution;
  solution.algorithm = "x";
  solution.deployments = {{UavId{0}, LocationId{0}}};
  solution.user_to_deployment = std::vector<std::int32_t>{0, 0};
  solution.served = 2;
  const std::string binary = solution_bytes(solution, io::Format::kBinary);
  expect_contract_error(
      [&] { (void)io::load_solution(std::string_view(binary), 3); },
      "assignment column has 2 users, expected 3");
}

TEST(IoBinary, CorruptHeaderRejected) {
  const Scenario scenario = make_pinned(pinned_instances().front());
  const std::string good = scenario_bytes(scenario, io::Format::kBinary);

  // Truncated to a partial header: the message names the byte offset where
  // the input ended.
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(good.substr(0, 11)); },
      "truncated header at byte offset 11");

  // Unsupported schema version (byte 8 is the low byte of the u32).
  std::string version = good;
  version[8] = 2;
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(version)); },
      "unsupported format version 2");

  // Mangled magic: the binary loader names it, the agnostic loader falls
  // through to the text parser (which also rejects).
  std::string magic = good;
  magic[0] = 'X';
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(magic)); },
      "bad magic");
  EXPECT_THROW((void)io::load_scenario(std::string_view(magic)),
               ContractError);
}

TEST(IoBinary, TruncatedFileRejected) {
  const Scenario scenario = make_pinned(pinned_instances().front());
  const std::string good = scenario_bytes(scenario, io::Format::kBinary);
  expect_contract_error(
      [&] {
        (void)io::load_scenario_binary(
            std::string_view(good).substr(0, good.size() - 1));
      },
      "truncated?");
  // The message points at the header's size field, not a generic failure.
  expect_contract_error(
      [&] {
        (void)io::load_scenario_binary(
            std::string_view(good).substr(0, good.size() - 1));
      },
      "size field at byte offset 16");
}

TEST(IoBinary, BadChecksumRejected) {
  const Scenario scenario = make_pinned(pinned_instances().front());
  std::string bytes = scenario_bytes(scenario, io::Format::kBinary);
  // The last byte of the file is payload of the final section; flipping it
  // breaks that section's FNV-1a checksum without touching the table.
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x1);
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(bytes)); },
      "checksum mismatch");
}

TEST(IoBinary, BadSectionTableRejected) {
  const Scenario scenario = make_pinned(pinned_instances().front());
  const std::string good = scenario_bytes(scenario, io::Format::kBinary);
  constexpr std::size_t kEntry0 = 24;     // first table entry.
  constexpr std::size_t kEntryBytes = 32;  // one table entry.

  // Out-of-bounds payload offset (u64 at entry+8).  The error names the
  // byte offset of the offending table entry so a corrupt file can be
  // inspected with a hex dump.
  std::string bounds = good;
  bounds[kEntry0 + 8 + 6] = static_cast<char>(0x7f);  // offset ~= 2^54
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(bounds)); },
      "payload out of bounds");
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(bounds)); },
      "table entry at byte offset 24");

  // Oversized section length (u64 at entry+16): also out of bounds, also
  // pinned to the entry's byte offset.
  std::string oversized = good;
  oversized[kEntry0 + kEntryBytes + 16 + 6] = static_cast<char>(0x7f);
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(oversized)); },
      "payload out of bounds");
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(oversized)); },
      "table entry at byte offset 56");

  // Unaligned payload offset.
  std::string unaligned = good;
  unaligned[kEntry0 + 8] = static_cast<char>(unaligned[kEntry0 + 8] + 1);
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(unaligned)); },
      "unaligned offset");

  // Duplicate section id: make entry 1's id equal entry 0's (id 1).
  std::string duplicate = good;
  duplicate[kEntry0 + 32] = 1;
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(duplicate)); },
      "duplicate id");

  // Unknown section id.
  std::string unknown = good;
  unknown[kEntry0] = 99;
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(unknown)); },
      "unknown section id 99");
}

TEST(IoBinary, CrossFormatMagicIsNamedInErrors) {
  const Scenario scenario = make_pinned(pinned_instances().front());
  const std::string scenario_bin =
      scenario_bytes(scenario, io::Format::kBinary);
  Solution solution;
  solution.algorithm = "x";
  solution.user_to_deployment = std::vector<std::int32_t>{-1};
  const std::string solution_bin =
      solution_bytes(solution, io::Format::kBinary);

  // Agnostic loaders: the *other* binary kind is detected and named.
  expect_contract_error(
      [&] { (void)io::load_scenario(std::string_view(solution_bin)); },
      "binary uavcov solution");
  expect_contract_error(
      [&] { (void)io::load_solution(std::string_view(scenario_bin), 1); },
      "binary uavcov scenario");

  // Binary loaders called directly on the wrong kind.
  expect_contract_error(
      [&] { (void)io::load_scenario_binary(std::string_view(solution_bin)); },
      "is a binary uavcov solution, not a scenario");
  expect_contract_error(
      [&] {
        (void)io::load_solution_binary(std::string_view(scenario_bin), 1);
      },
      "is a binary uavcov scenario, not a solution");
}

TEST(IoBinary, TraceSectionErrorsNameByteOffsets) {
  stream::ChurnTrace trace;
  stream::Epoch epoch;
  epoch.events.push_back(
      {stream::ChurnKind::kArrive, 0, {10.0, 20.0}, 2e3});
  epoch.events.push_back({stream::ChurnKind::kMove, 0, {30.0, 40.0}, 0.0});
  trace.epochs.push_back(std::move(epoch));
  std::ostringstream out;
  io::save_trace(out, trace, io::Format::kBinary);
  const std::string good = out.str();
  ASSERT_EQ(good.substr(0, 8), io::kBinaryTraceMagic);

  // Sanity: the good bytes load back.
  EXPECT_EQ(io::load_trace(std::string_view(good)).fingerprint(),
            trace.fingerprint());

  // Truncated header: offset named.
  expect_contract_error(
      [&] { (void)io::load_trace(std::string_view(good).substr(0, 13)); },
      "truncated header at byte offset 13");

  // Truncated file: the header's size field is named.
  expect_contract_error(
      [&] {
        (void)io::load_trace(
            std::string_view(good).substr(0, good.size() - 1));
      },
      "size field at byte offset 16");

  // Oversized section length (u64 at entry+16 of the first table entry):
  // the error names the table entry's byte offset and the payload range.
  std::string oversized = good;
  oversized[24 + 16 + 6] = static_cast<char>(0x7f);
  expect_contract_error(
      [&] { (void)io::load_trace(std::string_view(oversized)); },
      "table entry at byte offset 24");
  expect_contract_error(
      [&] { (void)io::load_trace(std::string_view(oversized)); },
      "exceeds the file");
}

TEST(IoBinary, FileEntryPointsSniffBothFormats) {
  const Scenario scenario = make_pinned(pinned_instances().back());
  const std::string dir = ::testing::TempDir();
  const std::string text_path = dir + "io_binary_test_scenario.txt";
  const std::string bin_path = dir + "io_binary_test_scenario.bin";
  io::save_scenario_file(text_path, scenario);  // text by default
  io::save_scenario_file(bin_path, scenario, io::Format::kBinary);
  EXPECT_EQ(io::load_scenario_file(text_path).fingerprint(),
            scenario.fingerprint());
  EXPECT_EQ(io::load_scenario_file(bin_path).fingerprint(),
            scenario.fingerprint());
}

TEST(IoBinary, StreamEntryPointsMatchStringViewOverloads) {
  const Scenario scenario = make_pinned(pinned_instances()[1]);
  const std::string binary = scenario_bytes(scenario, io::Format::kBinary);
  std::istringstream in(binary);
  EXPECT_EQ(io::load_scenario(in).fingerprint(), scenario.fingerprint());
  std::istringstream bin_in(binary);
  EXPECT_EQ(io::load_scenario_binary(bin_in).fingerprint(),
            scenario.fingerprint());
}

}  // namespace
}  // namespace uavcov
