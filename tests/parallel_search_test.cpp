// Tests for the parallel seed-subset search engine: the parallel path
// (threads > 1) must be bit-identical to the serial path (threads = 1) —
// same deployments, same user assignment, same served count, and the same
// ApproAlgStats subset counters — on randomized scenarios, with and
// without the max_seed_subsets budget.  Also covers the ThreadPool
// primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/appro_alg.hpp"
#include "obs/metrics.hpp"

namespace uavcov {
namespace {

/// Random small scenario on a cells×cells grid of 100 m cells (same
/// construction as appro_alg_test.cpp).
Scenario random_scenario(Rng& rng, std::int32_t cells, std::int32_t users,
                         std::int32_t uavs, std::int32_t cap_max = 3) {
  Scenario sc{
      .grid = Grid(cells * 100.0, cells * 100.0, 100.0),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t i = 0; i < users; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, cells * 100.0), rng.uniform(0, cells * 100.0)},
         1e3});
  }
  for (std::int32_t k = 0; k < uavs; ++k) {
    sc.fleet.push_back(
        {1 + static_cast<std::int32_t>(rng.next_below(
             static_cast<std::uint64_t>(cap_max))),
         Radio{}, 120.0});
  }
  return sc;
}

void expect_identical(const Solution& serial, const Solution& parallel) {
  EXPECT_EQ(serial.served, parallel.served);
  ASSERT_EQ(serial.deployments.size(), parallel.deployments.size());
  for (std::size_t i = 0; i < serial.deployments.size(); ++i) {
    EXPECT_EQ(serial.deployments[i].uav, parallel.deployments[i].uav) << i;
    EXPECT_EQ(serial.deployments[i].loc, parallel.deployments[i].loc) << i;
  }
  EXPECT_EQ(serial.user_to_deployment, parallel.user_to_deployment);
}

void expect_identical_counters(const ApproAlgStats& serial,
                               const ApproAlgStats& parallel) {
  EXPECT_EQ(serial.candidates, parallel.candidates);
  EXPECT_EQ(serial.subsets_enumerated, parallel.subsets_enumerated);
  EXPECT_EQ(serial.subsets_evaluated, parallel.subsets_evaluated);
  EXPECT_EQ(serial.subsets_stitched, parallel.subsets_stitched);
  EXPECT_EQ(serial.probes, parallel.probes);
}

class ParallelDeterminism : public testing::TestWithParam<int> {};

TEST_P(ParallelDeterminism, MatchesSerialBitForBit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 5);
  const std::int32_t cells = 4 + static_cast<std::int32_t>(rng.next_below(3));
  const std::int32_t users = 8 + static_cast<std::int32_t>(rng.next_below(30));
  const std::int32_t uavs = 3 + static_cast<std::int32_t>(rng.next_below(5));
  const Scenario sc = random_scenario(rng, cells, users, uavs);
  const CoverageModel cov(sc);
  for (std::int32_t s = 1; s <= 2; ++s) {
    ApproAlgParams serial_params;
    serial_params.s = s;
    serial_params.threads = 1;
    ApproAlgParams parallel_params = serial_params;
    parallel_params.threads = 4;

    ApproAlgStats serial_stats;
    ApproAlgStats parallel_stats;
    const Solution a = solve(sc, cov, serial_params, &serial_stats);
    const Solution b = solve(sc, cov, parallel_params, &parallel_stats);
    expect_identical(a, b);
    expect_identical_counters(serial_stats, parallel_stats);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, testing::Range(0, 10));

TEST(ParallelDeterminism, SubsetBudgetCountersStayExact) {
  Rng rng(923);
  const Scenario sc = random_scenario(rng, 5, 30, 6);
  const CoverageModel cov(sc);
  for (const std::int64_t budget : {1, 3, 7}) {
    ApproAlgParams serial_params;
    serial_params.s = 2;
    serial_params.threads = 1;
    serial_params.max_seed_subsets = budget;
    ApproAlgParams parallel_params = serial_params;
    parallel_params.threads = 4;

    ApproAlgStats serial_stats;
    ApproAlgStats parallel_stats;
    const Solution a = solve(sc, cov, serial_params, &serial_stats);
    const Solution b = solve(sc, cov, parallel_params, &parallel_stats);
    expect_identical(a, b);
    expect_identical_counters(serial_stats, parallel_stats);
    EXPECT_LE(serial_stats.subsets_evaluated, budget);
  }
}

TEST(ParallelDeterminism, BitIdenticalWithMetricsRecording) {
  // Observability design constraint 2 (docs/OBSERVABILITY.md): the metrics
  // registry is write-only from the solver's perspective, so recording must
  // not perturb the serial/parallel bit-identity.  ctest already exports
  // UAVCOV_METRICS=1 for this binary; force-enable anyway so a bare run of
  // the test binary checks the same thing.
  obs::Registry& reg = obs::Registry::instance();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const Scenario sc = random_scenario(rng, 5, 25, 5);
    const CoverageModel cov(sc);
    ApproAlgParams serial_params;
    serial_params.s = 2;
    serial_params.threads = 1;
    ApproAlgParams parallel_params = serial_params;
    parallel_params.threads = 4;

    ApproAlgStats serial_stats;
    ApproAlgStats parallel_stats;
    const Solution a = solve(sc, cov, serial_params, &serial_stats);
    const Solution b = solve(sc, cov, parallel_params, &parallel_stats);
    expect_identical(a, b);
    expect_identical_counters(serial_stats, parallel_stats);
  }
  reg.set_enabled(was_enabled);
}

TEST(ParallelDeterminism, ThreadsZeroMeansHardwareConcurrency) {
  Rng rng(31);
  const Scenario sc = random_scenario(rng, 4, 15, 4);
  const CoverageModel cov(sc);
  ApproAlgParams serial_params;
  serial_params.s = 2;
  serial_params.threads = 1;
  ApproAlgParams auto_params = serial_params;
  auto_params.threads = 0;  // auto-detect
  const Solution a = solve(sc, cov, serial_params);
  const Solution b = solve(sc, cov, auto_params);
  expect_identical(a, b);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after wait_idle().
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, WaitIdleRethrowsWorkerException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("worker failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool keeps working afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ResolvePicksHardwareConcurrencyForZero) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_EQ(ThreadPool::resolve(1), 1);
  EXPECT_EQ(ThreadPool::resolve(6), 6);
}

}  // namespace
}  // namespace uavcov
