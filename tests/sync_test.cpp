// Tests for the capability-annotated sync layer (common/sync.hpp):
// zero-cost layout pins, mutual exclusion through Mutex/LockGuard/
// UniqueLock, CondVar wakeups, and the analysis-tier reporting hook.
// The compile-time enforcement itself is pinned by the Clang-gated
// negative-compile probes in tests/sync_negcompile/ (see
// tests/CMakeLists.txt); everything here must pass on any toolchain.
#include "common/sync.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace uavcov::sync {
namespace {

// ---------------------------------------------------------------------------
// Zero-cost claims: the wrappers add no state to the std primitives they
// hold, so swapping them in cannot change layout, timing, or results.

static_assert(sizeof(Mutex) == sizeof(std::mutex));
static_assert(sizeof(LockGuard) == sizeof(std::lock_guard<std::mutex>));

// Capabilities must stay pinned in memory: handing out copies would let a
// "held" capability alias a different lock.
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_copy_constructible_v<LockGuard>);
static_assert(!std::is_copy_constructible_v<UniqueLock>);
static_assert(!std::is_copy_constructible_v<CondVar>);
static_assert(!std::is_move_constructible_v<UniqueLock>);

TEST(SyncMutex, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // A second thread must see the mutex as taken (same-thread re-try_lock
  // is UB for std::mutex, so probe from another thread).
  bool second_acquired = true;
  std::thread prober([&] {
    second_acquired = mu.try_lock();
    if (second_acquired) mu.unlock();
  });
  prober.join();
  EXPECT_FALSE(second_acquired);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncMutex, GuardsCounterAcrossThreads) {
  Mutex mu;
  std::int64_t counter = 0;  // guarded by mu (by construction below)
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const LockGuard lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, std::int64_t{kThreads} * kPerThread);
}

TEST(SyncUniqueLock, UnlockAndRelockTrackOwnership) {
  Mutex mu;
  UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  ASSERT_TRUE(mu.try_lock());  // really released
  mu.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(SyncCondVar, WaitWakesOnNotifyAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::int64_t produced = 0;

  std::thread producer([&] {
    const LockGuard lock(mu);
    produced = 99;
    ready = true;
    cv.notify_one();
  });

  {
    UniqueLock lock(mu);
    while (!ready) cv.wait(lock);
    // The lock is held again after wait: this read is race-free (TSan
    // verifies under the tsan preset).
    EXPECT_EQ(produced, 99);
    EXPECT_TRUE(lock.owns_lock());
  }
  producer.join();
}

TEST(SyncCondVar, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      UniqueLock lock(mu);
      while (!go) cv.wait(lock);
      ++awake;
    });
  }
  {
    const LockGuard lock(mu);
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(SyncAnalysis, TierMatchesCompiler) {
#if defined(__clang__)
  EXPECT_TRUE(capability_analysis_active());
#else
  EXPECT_FALSE(capability_analysis_active());
#endif
}

}  // namespace
}  // namespace uavcov::sync
