// End-to-end integration tests: the paper's qualitative claims on
// structured scenarios where the expected outcome is known by design.
#include <gtest/gtest.h>

#include "baselines/max_throughput.hpp"
#include "baselines/mcs.hpp"
#include "common/rng.hpp"
#include "core/appro_alg.hpp"
#include "eval/experiment.hpp"
#include "workload/distributions.hpp"

namespace uavcov {
namespace {

/// Two dense user pockets, heterogeneous fleet with two big UAVs and
/// several tiny relays — the paper's motivating shape (§I): a good
/// algorithm must put the big UAVs over the pockets and spend the small
/// ones on the relay chain between them.
Scenario two_pocket_scenario() {
  // Pocket centers 500 m apart = 5 hops at R_uav = 150 m; with K = 14 the
  // segment plan (L_max = 8, h_max = 2) admits pocket-seeded subsets whose
  // stitched bridge (4 relays) still fits the fleet.
  Scenario sc{
      .grid = Grid(800, 300, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  Rng rng(1234);
  const std::vector<workload::Hotspot> spots = {{{150, 150}, 60.0, 1.0},
                                                {{650, 150}, 60.0, 1.0}};
  for (const Vec2& p :
       workload::hotspot_positions(40, 800, 300, spots, 0.0, rng)) {
    sc.users.push_back({p, 1e3});
  }
  // 2 big UAVs + 12 tiny ones (capacity 1, mostly relay material).
  sc.fleet.push_back({20, Radio{}, 120.0});
  sc.fleet.push_back({20, Radio{}, 120.0});
  for (int i = 0; i < 12; ++i) sc.fleet.push_back({1, Radio{}, 120.0});
  return sc;
}

TEST(Integration, BigUavsLandOnThePockets) {
  const Scenario sc = two_pocket_scenario();
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 2;
  const Solution sol = appro_alg(sc, cov, params);
  validate_solution(sc, cov, sol);
  // Both pockets hold 20 users; two capacity-20 UAVs + relays can serve
  // nearly everyone.  Demand a strong majority.
  EXPECT_GE(sol.served, 30);
  // The two capacity-20 UAVs must be the ones serving the pockets: check
  // each big UAV carries more load than any tiny one.
  std::int64_t min_big = 1'000'000, max_small = -1;
  for (std::size_t d = 0; d < sol.deployments.size(); ++d) {
    const auto load = sol.load_of(static_cast<std::int32_t>(d));
    if (sc.fleet[sol.deployments[d].uav].capacity == 20) {
      min_big = std::min(min_big, load);
    } else {
      max_small = std::max(max_small, load);
    }
  }
  EXPECT_GT(min_big, max_small);
}

TEST(Integration, HeterogeneityAwareBeatsCapacityBlindBaselines) {
  // On the two-pocket instance the capacity-blind baselines place UAVs on
  // cells in input order, so a tiny UAV can end up over a pocket.
  const Scenario sc = two_pocket_scenario();
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 2;
  const Solution ours = appro_alg(sc, cov, params);
  const Solution mcs = baselines::solve(sc, cov, baselines::McsParams{});
  const Solution mtp =
      baselines::solve(sc, cov, baselines::MaxThroughputParams{});
  validate_solution(sc, cov, mcs);
  validate_solution(sc, cov, mtp);
  EXPECT_GE(ours.served, mcs.served);
  EXPECT_GE(ours.served, mtp.served);
}

TEST(Integration, ConnectivityForcedAcrossTheGap) {
  // Solutions covering both pockets must bridge the 900 m gap with the
  // relay chain — verify the deployed network is connected with deployments
  // in both halves.
  const Scenario sc = two_pocket_scenario();
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 2;
  const Solution sol = appro_alg(sc, cov, params);
  if (sol.served > 25) {  // both pockets covered
    bool left = false, right = false;
    for (const Deployment& d : sol.deployments) {
      const double x = sc.grid.center(d.loc).x;
      left |= x < 300;
      right |= x > 500;
    }
    EXPECT_TRUE(left && right);
    EXPECT_TRUE(deployments_connected(sc, sol.deployments));
  }
}

TEST(Integration, MoreUavsNeverHurt) {
  // Served users should be nondecreasing in K on a fixed scenario (the
  // solver can always ignore extras... it deploys them, but extra capacity
  // never reduces the optimal assignment).
  Rng rng(555);
  Scenario sc{
      .grid = Grid(800, 800, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (int i = 0; i < 50; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, 800), rng.uniform(0, 800)}, 1e3});
  }
  std::int64_t prev = -1;
  for (std::int32_t K = 2; K <= 6; K += 2) {
    sc.fleet.assign(static_cast<std::size_t>(K), {4, Radio{}, 120.0});
    const CoverageModel cov(sc);
    ApproAlgParams params;
    params.s = 1;
    const Solution sol = appro_alg(sc, cov, params);
    validate_solution(sc, cov, sol);
    EXPECT_GE(sol.served, prev) << "K = " << K;
    prev = sol.served;
  }
}

TEST(Integration, SWeepImprovesOrTies) {
  // Fig. 6(a)'s qualitative claim: larger s never hurts approAlg much;
  // assert monotone-or-close (within 10%) on a clustered instance.
  Rng rng(31415);
  Scenario sc{
      .grid = Grid(1000, 1000, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  const std::vector<workload::Hotspot> spots = {
      {{200, 200}, 80.0, 2.0}, {{800, 300}, 80.0, 1.0},
      {{500, 800}, 80.0, 1.0}};
  for (const Vec2& p :
       workload::hotspot_positions(60, 1000, 1000, spots, 0.1, rng)) {
    sc.users.push_back({p, 1e3});
  }
  for (int k = 0; k < 8; ++k) {
    sc.fleet.push_back(
        {2 + static_cast<std::int32_t>(rng.next_below(6)), Radio{}, 120.0});
  }
  const CoverageModel cov(sc);
  std::int64_t s1 = 0;
  for (std::int32_t s = 1; s <= 2; ++s) {
    ApproAlgParams params;
    params.s = s;
    const Solution sol = appro_alg(sc, cov, params);
    validate_solution(sc, cov, sol);
    if (s == 1) {
      s1 = sol.served;
    } else {
      EXPECT_GE(sol.served * 10, s1 * 9)
          << "s=2 should not collapse below 90% of s=1";
    }
  }
}

}  // namespace
}  // namespace uavcov
